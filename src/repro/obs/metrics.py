"""Metrics: counters, gauges, and histograms with percentile summaries.

The registry is the numeric side of the observability layer — where
spans say *where time went*, metrics say *how much of what happened*:
bytes shipped per query, rounding-trial costs, LP sizes.  All three
instrument kinds are thread-safe and stdlib-only.

Naming convention: dotted lowercase paths (``engine.query.bytes``,
``lp.solve_seconds``).  The Prometheus exporter rewrites dots to
underscores; the JSON exporter keeps them verbatim.
"""

from __future__ import annotations

import random
import threading
import zlib
from typing import Any, Iterator, Mapping


def _label_key(name: str, labels: Mapping[str, str] | None) -> str:
    """Canonical registry key: name plus sorted label pairs."""
    if not labels:
        return name
    pairs = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{pairs}}}"


class Counter:
    """A monotonically increasing count (events, bytes, trials).

    ``labels`` are optional exposition-format key/value pairs (e.g.
    ``{"case": "lp_assembly"}``); they distinguish instruments sharing
    a name and are rendered — escaped — by the Prometheus exporter.
    """

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: Mapping[str, str] | None = None):
        self.name = name
        self.labels: dict[str, str] = dict(labels or {})
        self._value = 0.0
        self._lock = threading.Lock()

    @property
    def key(self) -> str:
        """Registry/report key: name plus sorted labels."""
        return _label_key(self.name, self.labels)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be nonnegative)."""
        if amount < 0:
            raise ValueError("counters only go up; use a gauge instead")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self._value})"


class Gauge:
    """A point-in-time value that can move either way (sizes, loads)."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: Mapping[str, str] | None = None):
        self.name = name
        self.labels: dict[str, str] = dict(labels or {})
        self._value = 0.0
        self._lock = threading.Lock()

    @property
    def key(self) -> str:
        """Registry/report key: name plus sorted labels."""
        return _label_key(self.name, self.labels)

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self._value})"


class Histogram:
    """A distribution with percentile summaries.

    Two retention modes:

    * **Exact** (``reservoir=None``, the default): every observation is
      retained verbatim and percentiles are exact — computed with the
      linear-interpolation rule numpy uses by default.  Right for the
      short planning/evaluation runs this repo mostly times.
    * **Capped reservoir** (``reservoir=N``): exact until ``N``
      observations, then classic reservoir sampling (Vitter's
      Algorithm R) over a fixed-size sample, so memory stays bounded
      under long ``repro online`` runs while percentiles stay unbiased
      estimates.  ``count``/``sum``/``min``/``max``/``mean`` remain
      exact in both modes — only the percentile sample is capped.

    The reservoir's RNG is seeded from the histogram *name*, never the
    wall clock, so a deterministic observation stream yields a
    deterministic summary.
    """

    __slots__ = (
        "name",
        "labels",
        "reservoir",
        "_values",
        "_sorted",
        "_lock",
        "_count",
        "_sum",
        "_min",
        "_max",
        "_rng",
    )

    def __init__(
        self,
        name: str,
        reservoir: int | None = None,
        labels: Mapping[str, str] | None = None,
    ):
        if reservoir is not None and reservoir < 1:
            raise ValueError("reservoir must be at least 1 (or None)")
        self.name = name
        self.labels: dict[str, str] = dict(labels or {})
        self.reservoir = reservoir
        self._values: list[float] = []
        self._sorted = True
        self._lock = threading.Lock()
        self._count = 0
        self._sum = 0.0
        self._min = 0.0
        self._max = 0.0
        self._rng = (
            None
            if reservoir is None
            else random.Random(zlib.crc32(name.encode("utf-8")))
        )

    @property
    def key(self) -> str:
        """Registry/report key: name plus sorted labels."""
        return _label_key(self.name, self.labels)

    def _observe_locked(self, value: float) -> None:
        self._count += 1
        self._sum += value
        if self._count == 1:
            self._min = self._max = value
        else:
            self._min = min(self._min, value)
            self._max = max(self._max, value)
        if self.reservoir is None or len(self._values) < self.reservoir:
            if self._sorted and self._values and value < self._values[-1]:
                self._sorted = False
            self._values.append(value)
            return
        # Algorithm R: observation n survives with probability k/n.
        assert self._rng is not None
        slot = self._rng.randrange(self._count)
        if slot < self.reservoir:
            self._values[slot] = value
            self._sorted = False

    def observe(self, value: float) -> None:
        """Record one observation."""
        with self._lock:
            self._observe_locked(float(value))

    def observe_many(self, value: float, count: int) -> None:
        """Record ``count`` identical observations in one call.

        Equivalent to ``count`` :meth:`observe` calls — the batched
        replay path aggregates repeated queries and reports each
        unique value once with its multiplicity.
        """
        if count < 0:
            raise ValueError("count must be nonnegative")
        if count == 0:
            return
        value = float(value)
        with self._lock:
            if self.reservoir is None:
                self._count += count
                self._sum += value * count
                if self._count == count:
                    self._min = self._max = value
                else:
                    self._min = min(self._min, value)
                    self._max = max(self._max, value)
                if self._sorted and self._values and value < self._values[-1]:
                    self._sorted = False
                self._values.extend([value] * count)
            else:
                for _ in range(count):
                    self._observe_locked(value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def min(self) -> float:
        return self._min

    @property
    def max(self) -> float:
        return self._max

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def retained(self) -> int:
        """Observations currently in the percentile sample."""
        return len(self._values)

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0..100), linearly interpolated.

        Exact in exact mode; an unbiased reservoir estimate once a
        capped histogram has seen more than ``reservoir`` observations.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        with self._lock:
            if not self._values:
                return 0.0
            if not self._sorted:
                self._values.sort()
                self._sorted = True
            values = self._values
            rank = (p / 100.0) * (len(values) - 1)
            lo = int(rank)
            hi = min(lo + 1, len(values) - 1)
            frac = rank - lo
            return values[lo] * (1.0 - frac) + values[hi] * frac

    def summary(self) -> dict[str, float]:
        """count/sum/min/max/mean plus p50, p90, p95, p99."""
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count})"


class _NullInstrument:
    """Shared no-op counter/gauge/histogram for the disabled path."""

    __slots__ = ()
    name = "noop"
    key = "noop"
    labels: dict[str, str] = {}
    reservoir = None
    retained = 0

    def inc(self, amount: float = 1.0) -> None:
        return None

    def dec(self, amount: float = 1.0) -> None:
        return None

    def set(self, value: float) -> None:
        return None

    def observe(self, value: float) -> None:
        return None

    def observe_many(self, value: float, count: int) -> None:
        return None

    value = 0.0
    count = 0
    sum = 0.0
    min = 0.0
    max = 0.0
    mean = 0.0

    def percentile(self, p: float) -> float:
        return 0.0

    def summary(self) -> dict[str, float]:
        return {}

    def __repr__(self) -> str:
        return "NullInstrument()"


NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Get-or-create home for named instruments.

    Asking twice for the same name *and labels* returns the same
    instrument; asking for a key already registered as a different
    kind raises.  Constructor-only options (a histogram's
    ``reservoir``) apply when the call creates the instrument —
    first creation wins, later calls just fetch.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get(
        self,
        name: str,
        kind: type,
        labels: Mapping[str, str] | None = None,
        **options: Any,
    ) -> Any:
        key = _label_key(name, labels)
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = self._instruments[key] = kind(
                    name, labels=labels, **options
                )
            elif not isinstance(instrument, kind):
                raise ValueError(
                    f"metric {key!r} already registered as "
                    f"{type(instrument).__name__}, not {kind.__name__}"
                )
            return instrument

    def counter(
        self, name: str, labels: Mapping[str, str] | None = None
    ) -> Counter:
        return self._get(name, Counter, labels)

    def gauge(self, name: str, labels: Mapping[str, str] | None = None) -> Gauge:
        return self._get(name, Gauge, labels)

    def histogram(
        self,
        name: str,
        reservoir: int | None = None,
        labels: Mapping[str, str] | None = None,
    ) -> Histogram:
        return self._get(name, Histogram, labels, reservoir=reservoir)

    def __iter__(self) -> Iterator[Counter | Gauge | Histogram]:
        with self._lock:
            return iter(list(self._instruments.values()))

    def __len__(self) -> int:
        return len(self._instruments)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._instruments)

    def reset(self) -> None:
        """Drop every instrument."""
        with self._lock:
            self._instruments.clear()
