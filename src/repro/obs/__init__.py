"""repro.obs — spans, metrics, journal, and exportable run reports.

The observability layer for the LPRR pipeline: a nesting span tracer
that survives the ``TaskRunner`` process boundary, a metrics registry
(counters, gauges, histograms with exact or reservoir percentiles), a
bounded deterministic flight-recorder journal, and exporters (JSON,
Prometheus text, Chrome ``trace_event``, console tree).  Stdlib-only,
thread-safe, and free when disabled — instrumented code pays one
global read per call site until :func:`enable` is invoked.

Typical use::

    from repro import obs
    from repro.obs.export import render_span_tree, to_json

    inst = obs.enable(obs.Instrumentation(journal=obs.Journal()))
    result = LPRRPlanner(seed=0).plan(problem)
    print(render_span_tree(inst.tracer))
    print(to_json(inst.metrics, inst.tracer))
    inst.journal.write("run.jsonl")
    obs.disable()

See ``docs/OBSERVABILITY.md`` for the record schema, metric catalogue,
and span hierarchy.
"""

from repro.obs.export import (
    escape_label_value,
    metrics_to_dict,
    render_span_tree,
    to_chrome_trace,
    to_json,
    to_prometheus,
)
from repro.obs.journal import JOURNAL_SCHEMA, Journal, load_journal
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.runtime import (
    Instrumentation,
    counter,
    current,
    disable,
    enable,
    gauge,
    histogram,
    is_enabled,
    journal,
    record,
    span,
    timed,
)
from repro.obs.span import (
    Span,
    Tracer,
    detached_span,
    span_from_payload,
    span_to_payload,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Instrumentation",
    "JOURNAL_SCHEMA",
    "Journal",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "counter",
    "current",
    "detached_span",
    "disable",
    "enable",
    "escape_label_value",
    "gauge",
    "histogram",
    "is_enabled",
    "journal",
    "load_journal",
    "metrics_to_dict",
    "record",
    "render_span_tree",
    "span",
    "span_from_payload",
    "span_to_payload",
    "timed",
    "to_chrome_trace",
    "to_json",
    "to_prometheus",
]
