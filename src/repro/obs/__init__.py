"""repro.obs — spans, metrics, and exportable run reports.

The observability layer for the LPRR pipeline: a nesting span tracer,
a metrics registry (counters, gauges, histograms with exact
percentiles), and exporters (JSON, Prometheus text, console tree).
Stdlib-only, thread-safe, and free when disabled — instrumented code
pays one global read per call site until :func:`enable` is invoked.

Typical use::

    from repro import obs
    from repro.obs.export import render_span_tree, to_json

    inst = obs.enable()
    result = LPRRPlanner(seed=0).plan(problem)
    print(render_span_tree(inst.tracer))
    print(to_json(inst.metrics, inst.tracer))
    obs.disable()

See ``docs/OBSERVABILITY.md`` for the metric catalogue and span
hierarchy.
"""

from repro.obs.export import (
    metrics_to_dict,
    render_span_tree,
    to_json,
    to_prometheus,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.runtime import (
    Instrumentation,
    counter,
    current,
    disable,
    enable,
    gauge,
    histogram,
    is_enabled,
    span,
    timed,
)
from repro.obs.span import Span, Tracer, detached_span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Instrumentation",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "counter",
    "current",
    "detached_span",
    "disable",
    "enable",
    "gauge",
    "histogram",
    "is_enabled",
    "metrics_to_dict",
    "render_span_tree",
    "span",
    "timed",
    "to_json",
    "to_prometheus",
]
