"""Tests for capacity repair (repro.core.repair)."""

import numpy as np
import pytest

from repro.core.placement import Placement
from repro.core.problem import PlacementProblem
from repro.core.repair import repair_capacity
from repro.exceptions import InfeasibleProblemError


def uniform_problem(sizes, capacity, correlations=None, nodes=2):
    objects = {f"o{i}": s for i, s in enumerate(sizes)}
    return PlacementProblem.build(
        objects, {k: capacity for k in range(nodes)}, correlations or {}
    )


class TestRepairCapacity:
    def test_feasible_placement_returned_unchanged(self):
        p = uniform_problem([1.0, 1.0], capacity=2.0)
        placement = Placement(p, np.array([0, 1]))
        assert repair_capacity(placement) is placement

    def test_overload_resolved(self):
        p = uniform_problem([1.0, 1.0, 1.0], capacity=2.0)
        placement = Placement(p, np.array([0, 0, 0]))  # load 3 > 2
        repaired = repair_capacity(placement)
        assert repaired.is_feasible()

    def test_minimum_cost_object_moves(self):
        # o0-o1 strongly correlated, o2 loose: o2 should be the mover.
        p = uniform_problem(
            [1.0, 1.0, 1.0], capacity=2.0, correlations={("o0", "o1"): 0.9}
        )
        placement = Placement(p, np.array([0, 0, 0]))
        repaired = repair_capacity(placement)
        assert repaired.is_feasible()
        assert repaired.node_of("o0") == repaired.node_of("o1")
        assert repaired.node_of("o2") != repaired.node_of("o0")

    def test_colocation_pull_considered(self):
        # o2's neighbor o3 already lives on node 1: moving o2 there is
        # cheaper than moving anything else.
        p = PlacementProblem.build(
            {"o0": 1.0, "o1": 1.0, "o2": 1.0, "o3": 1.0},
            {0: 2.0, 1: 2.0},
            {("o0", "o1"): 0.5, ("o2", "o3"): 0.5},
        )
        placement = Placement.from_mapping(
            p, {"o0": 0, "o1": 0, "o2": 0, "o3": 1}
        )
        repaired = repair_capacity(placement)
        assert repaired.is_feasible()
        assert repaired.node_of("o2") == 1
        # Repair strictly reduced cost here (split pair got united).
        assert repaired.communication_cost() < placement.communication_cost()

    def test_tolerance_accepts_slight_overrun(self):
        p = uniform_problem([1.0, 1.05], capacity=2.0)
        placement = Placement(p, np.array([0, 0]))  # load 2.05
        repaired = repair_capacity(placement, tolerance=0.05)
        assert repaired is placement

    def test_explicit_capacities_override(self):
        p = uniform_problem([1.0, 1.0], capacity=1.0)
        placement = Placement(p, np.array([0, 0]))
        # Looser explicit capacities: nothing to do.
        repaired = repair_capacity(placement, capacities=np.array([5.0, 5.0]))
        assert repaired is placement

    def test_impossible_total_size_raises(self):
        p = uniform_problem([2.0, 2.0], capacity=1.5)
        placement = Placement(p, np.array([0, 0]))
        with pytest.raises(InfeasibleProblemError):
            repair_capacity(placement)

    def test_multiple_overloaded_nodes(self):
        p = uniform_problem([1.0] * 6, capacity=2.0, nodes=3)
        placement = Placement(p, np.array([0, 0, 0, 1, 1, 1]))
        repaired = repair_capacity(placement)
        assert repaired.is_feasible()
        assert repaired.node_loads().tolist() == [2.0, 2.0, 2.0]

    def test_infinite_capacities_never_overloaded(self):
        p = PlacementProblem.build({"a": 100.0, "b": 100.0}, 2, {})
        placement = Placement(p, np.array([0, 0]))
        assert repair_capacity(placement) is placement

    def test_repair_preserves_object_count(self):
        rng = np.random.default_rng(0)
        sizes = rng.uniform(0.5, 2.0, 12).tolist()
        p = uniform_problem(sizes, capacity=sum(sizes) / 3 * 1.3, nodes=3)
        placement = Placement(p, np.zeros(12, dtype=np.int64))
        repaired = repair_capacity(placement)
        assert repaired.is_feasible()
        assert repaired.node_object_counts().sum() == 12
