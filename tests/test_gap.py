"""Tests for the optimality-gap harness (repro.gap)."""

import json

import numpy as np
import pytest

from repro.gap import (
    GAP_REPORT_SCHEMA,
    GapReport,
    _ratio,
    gap_instance,
    run_gap,
)


class TestGapInstance:
    def test_pure_function_of_seed_and_index(self):
        a = gap_instance(3, 1)
        b = gap_instance(3, 1)
        assert np.array_equal(a.sizes, b.sizes)
        assert np.array_equal(a.capacities, b.capacities)
        assert np.array_equal(a.pair_index, b.pair_index)
        assert np.array_equal(a.pair_weights, b.pair_weights)

    def test_distinct_indices_differ(self):
        a = gap_instance(3, 1)
        b = gap_instance(3, 2)
        assert (
            a.pair_weights.shape != b.pair_weights.shape
            or not np.array_equal(a.pair_weights, b.pair_weights)
        )

    def test_shape_and_headroom(self):
        problem = gap_instance(0, 0, objects=12, nodes=3)
        assert problem.num_objects == 12
        assert problem.num_nodes == 3
        # 1.4x average load: feasible but tight enough to force splits.
        assert problem.capacities.sum() >= problem.sizes.sum()


class TestRatio:
    def test_zero_optimum_zero_cost(self):
        assert _ratio(0.0, 0.0) == 1.0

    def test_zero_optimum_positive_cost(self):
        assert _ratio(0.5, 0.0) == float("inf")

    def test_ordinary(self):
        assert _ratio(3.0, 2.0) == pytest.approx(1.5)


class TestRunGap:
    @pytest.fixture(scope="class")
    def report(self):
        return run_gap(seed=0, instances=3, objects=10, nodes=3)

    def test_schema_and_fields(self, report):
        payload = report.to_dict()
        assert payload["schema"] == GAP_REPORT_SCHEMA
        assert payload["seed"] == 0
        assert payload["reference"] == "exact"
        assert len(payload["cases"]) == 3
        case = payload["cases"][0]
        for key in (
            "index",
            "objects",
            "nodes",
            "pairs",
            "exact_cost",
            "lprr_cost",
            "fo_cost",
            "lprr_ratio",
            "fo_ratio",
            "lprr_excess",
            "fo_excess",
        ):
            assert key in case

    def test_gaps_are_bounded_below_by_optimal(self, report):
        # The reference is a certified optimum under zero tolerance, so
        # no planner can beat it.
        for case in report.cases:
            assert case.lprr_ratio >= 1.0 - 1e-9
            assert case.fo_ratio >= 1.0 - 1e-9
            assert case.lprr_excess >= -1e-9
            assert case.fo_excess >= -1e-9

    def test_byte_reproducible(self, report):
        again = run_gap(seed=0, instances=3, objects=10, nodes=3)
        assert report.to_json() == again.to_json()
        # And the canonical form round-trips through json.
        assert json.loads(report.to_json())["cases"] == [
            c.to_dict() for c in report.cases
        ]

    def test_render_mentions_aggregates(self, report):
        text = report.render()
        assert "optimality gap" in text
        assert "mean excess" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            run_gap(instances=0)
        with pytest.raises(ValueError):
            run_gap(reference="nope")


class TestCpsatReference:
    def test_cpsat_reference_needs_ortools(self):
        pytest.importorskip("ortools")
        report = run_gap(seed=0, instances=2, objects=8, reference="cpsat")
        assert report.reference == "cpsat"
        assert isinstance(report, GapReport)
