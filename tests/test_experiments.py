"""Tests for the experiment harness (repro.experiments) at tiny scale."""

import pytest

from repro.experiments.common import CaseStudy, CaseStudyConfig
from repro.experiments.fig2 import SkewStabilityConfig, run_skewness_stability
from repro.experiments.fig5 import DominanceConfig, run_dominance
from repro.experiments.fig6 import ScopeSweepConfig, run_scope_sweep
from repro.experiments.fig7 import NodeSweepConfig, run_node_sweep

TINY = CaseStudyConfig(
    num_documents=120,
    vocabulary_size=400,
    words_per_doc=30.0,
    num_queries=2000,
    num_topics=60,
    min_support=2,
    seed=5,
)


@pytest.fixture(scope="module")
def study():
    return CaseStudy.build(TINY)


class TestCaseStudy:
    def test_build_produces_two_periods(self, study):
        assert len(study.log) == TINY.num_queries
        assert len(study.log_period2) == TINY.num_queries

    def test_problem_cached_per_node_count(self, study):
        assert study.placement_problem(4) is study.placement_problem(4)
        assert study.placement_problem(4) is not study.placement_problem(5)

    def test_problem_uses_index_sizes(self, study):
        problem = study.placement_problem(4)
        word = problem.object_ids[0]
        assert problem.size_of(word) == study.index.size_bytes(word)

    def test_replay_cost_nonnegative_and_strategy_sensitive(self, study):
        hash_cost = study.replay_cost(study.place_hash(4))
        lprr_cost = study.replay_cost(study.place_lprr(4, scope=80))
        assert hash_cost > 0
        assert lprr_cost < hash_cost

    def test_place_greedy_total(self, study):
        placement = study.place_greedy(4, scope=50)
        assert placement.assignment.shape == (
            study.placement_problem(4).num_objects,
        )


class TestFig2:
    def test_result_shape(self, study):
        result = run_skewness_stability(
            study, SkewStabilityConfig(top_pairs=100, min_count=5)
        )
        assert result.ranks[0] == 1
        assert len(result.ranks) == len(result.period1_probabilities)
        assert len(result.ranks) == len(result.period2_probabilities)
        assert result.skew >= 1.0

    def test_curve_descending(self, study):
        result = run_skewness_stability(study, SkewStabilityConfig(top_pairs=100))
        probs = result.period1_probabilities
        assert all(a >= b for a, b in zip(probs, probs[1:]))

    def test_render_mentions_both_panels(self, study):
        text = run_skewness_stability(study).render()
        assert "Figure 2(A)" in text and "Figure 2(B)" in text

    def test_stability_uses_support_threshold(self, study):
        strict = run_skewness_stability(
            study, SkewStabilityConfig(min_count=10)
        )
        loose = run_skewness_stability(study, SkewStabilityConfig(min_count=1))
        assert len(strict.stability.pairs) <= len(loose.stability.pairs)


class TestFig5:
    def test_curves_cover_everything_at_full_scope(self, study):
        result = run_dominance(study, DominanceConfig())
        assert result.curves.size_fraction[-1] == pytest.approx(1.0)
        assert result.curves.cost_fraction[-1] == pytest.approx(1.0)

    def test_custom_checkpoints(self, study):
        result = run_dominance(study, DominanceConfig(checkpoints=[10, 50]))
        assert result.curves.checkpoints == (10, 50)

    def test_render(self, study):
        assert "Figure 5" in run_dominance(study).render()


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self, study):
        return run_scope_sweep(
            study,
            ScopeSweepConfig(scopes=(30, 100), num_nodes=4, rounding_trials=5),
        )

    def test_normalization(self, result):
        assert len(result.normalized_lprr) == 2
        assert all(v > 0 for v in result.normalized_lprr)

    def test_savings_properties(self, result):
        assert 0.0 <= result.best_lprr_saving <= 1.0
        assert 0.0 <= result.best_greedy_saving <= 1.0

    def test_lprr_saves_at_wide_scope(self, result):
        assert result.normalized_lprr[-1] < 1.0

    def test_render(self, result):
        text = result.render()
        assert "Figure 6" in text and "LPRR" in text

    def test_default_scopes_derived_from_vocabulary(self, study):
        result = run_scope_sweep(
            study, ScopeSweepConfig(scopes=None, num_nodes=3, rounding_trials=2)
        )
        assert len(result.scopes) >= 5


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self, study):
        return run_node_sweep(
            study,
            NodeSweepConfig(node_counts=(3, 6), scope=80, rounding_trials=5),
        )

    def test_per_size_baselines(self, result):
        assert len(result.hash_bytes) == 2
        # Hash cost grows with node count ((n-1)/n split probability).
        assert result.hash_bytes[1] >= result.hash_bytes[0]

    def test_lprr_beats_hash_everywhere(self, result):
        assert all(v < 1.0 for v in result.normalized_lprr)

    def test_savings_range_ordered(self, result):
        lo, hi = result.lprr_saving_range
        assert lo <= hi

    def test_render(self, result):
        assert "Figure 7" in result.render()


class TestFullReport:
    def test_report_runs_everything(self, study):
        from repro.experiments.report import run_full_report

        report = run_full_report(
            study,
            scopes=(30, 80),
            node_counts=(3, 5),
            fig7_scope=60,
            rounding_trials=3,
        )
        text = report.render()
        for marker in ("Figure 2(A)", "Figure 5", "Figure 6", "Figure 7", "Headline"):
            assert marker in text
        lo, hi = report.headline_vs_hash
        assert lo <= hi
        assert report.elapsed_seconds > 0
