"""Tests for JSON persistence (repro.core.serialization)."""

import json

import numpy as np
import pytest

from repro.core.placement import Placement
from repro.core.problem import PlacementProblem
from repro.core.serialization import (
    load_placement,
    load_problem,
    problem_from_dict,
    problem_to_dict,
    save_placement,
    save_problem,
)
from repro.exceptions import TraceFormatError


@pytest.fixture
def problem():
    return PlacementProblem.build(
        objects={"a": 4.0, "b": 3.0, "c": 5.0},
        nodes={"n0": 8.0, "n1": 8.0},
        correlations={("a", "b"): 0.3, ("b", "c"): 0.2},
        resources={"cpu": ({"a": 2.0, "c": 1.0}, {"n0": 5.0, "n1": 5.0})},
    )


class TestProblemRoundTrip:
    def test_dict_round_trip_preserves_structure(self, problem):
        restored = problem_from_dict(problem_to_dict(problem))
        assert set(restored.object_ids) == set(map(str, problem.object_ids))
        assert restored.num_pairs == problem.num_pairs
        assert restored.total_size == pytest.approx(problem.total_size)
        assert restored.total_pair_weight == pytest.approx(problem.total_pair_weight)

    def test_capacities_preserved(self, problem):
        restored = problem_from_dict(problem_to_dict(problem))
        assert sorted(restored.capacities.tolist()) == [8.0, 8.0]

    def test_infinite_capacity_round_trips(self):
        p = PlacementProblem.build({"a": 1.0}, 2, {})
        restored = problem_from_dict(problem_to_dict(p))
        assert np.all(np.isinf(restored.capacities))

    def test_resources_preserved(self, problem):
        restored = problem_from_dict(problem_to_dict(problem))
        spec = restored.resource("cpu")
        assert spec.total_load == pytest.approx(3.0)
        assert spec.budgets.tolist() == [5.0, 5.0]

    def test_pair_costs_preserved(self, problem):
        restored = problem_from_dict(problem_to_dict(problem))
        weights = sorted(restored.pair_weights.tolist())
        assert weights == pytest.approx(sorted(problem.pair_weights.tolist()))

    def test_file_round_trip(self, problem, tmp_path):
        path = tmp_path / "problem.json"
        save_problem(problem, path)
        restored = load_problem(path)
        assert restored.num_objects == 3

    def test_schema_checked(self):
        with pytest.raises(TraceFormatError, match="schema"):
            problem_from_dict({"schema": "bogus"})

    def test_malformed_document(self):
        with pytest.raises(TraceFormatError, match="malformed"):
            problem_from_dict({"schema": "repro/problem/v1", "objects": {}})

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{not json")
        with pytest.raises(TraceFormatError, match="invalid JSON"):
            load_problem(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceFormatError, match="cannot read"):
            load_problem(tmp_path / "missing.json")


class TestPlacementRoundTrip:
    def test_round_trip_preserves_cost(self, problem, tmp_path):
        placement = Placement.from_mapping(
            problem, {"a": "n0", "b": "n0", "c": "n1"}
        )
        # Serialize both so ids stringify consistently.
        restored_problem = problem_from_dict(problem_to_dict(problem))
        path = tmp_path / "placement.json"
        save_placement(placement, path)
        restored = load_placement(path, restored_problem)
        assert restored.communication_cost() == pytest.approx(
            placement.communication_cost()
        )

    def test_dict_round_trip(self, problem):
        placement = Placement.from_mapping(
            problem, {"a": "n0", "b": "n1", "c": "n1"}
        )
        restored_problem = problem_from_dict(problem_to_dict(problem))
        restored = Placement.from_dict(placement.to_dict(), restored_problem)
        assert restored.node_of("a") == "n0"

    def test_schema_checked(self, problem):
        with pytest.raises(TraceFormatError, match="schema"):
            Placement.from_dict({"schema": "nope"}, problem)

    def test_unknown_object_rejected(self, problem):
        restored_problem = problem_from_dict(problem_to_dict(problem))
        bad = {
            "schema": "repro/placement/v1",
            "mapping": {"zzz": "n0", "a": "n0", "b": "n0", "c": "n0"},
        }
        with pytest.raises(Exception):
            Placement.from_dict(bad, restored_problem)

    def test_removed_shims_stay_removed(self):
        # placement_to_dict / placement_from_dict were deprecated in
        # 1.6 and removed in 1.8 per the policy in docs/API.md.
        import repro.core.serialization as serialization

        assert not hasattr(serialization, "placement_to_dict")
        assert not hasattr(serialization, "placement_from_dict")

    def test_files_are_stable_json(self, problem, tmp_path):
        path = tmp_path / "problem.json"
        save_problem(problem, path)
        data = json.loads(path.read_text())
        assert data["schema"] == "repro/problem/v1"
