"""Tests for randomized rounding (repro.core.rounding) including the
paper's Lemma 1 / Theorem 2 guarantees checked empirically."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lp import FractionalPlacement, LPStats, solve_placement_lp
from repro.core.problem import PlacementProblem
from repro.core.rounding import round_best_of, round_fractional
from repro.exceptions import SolverError

DUMMY_STATS = LPStats(0, 0, 0, 0.0, 0)


def make_fractional(problem, fractions, bound=0.0):
    return FractionalPlacement(problem, np.asarray(fractions, float), bound, DUMMY_STATS)


@pytest.fixture
def uniform_fractional():
    p = PlacementProblem.build(
        {"a": 1.0, "b": 1.0}, 2, {("a", "b"): 1.0}
    )
    return p, make_fractional(p, [[0.5, 0.5], [0.5, 0.5]])


class TestRoundFractional:
    def test_places_every_object(self, uniform_fractional):
        _, frac = uniform_fractional
        placement, rounds = round_fractional(frac, rng=0)
        assert np.all(placement.assignment >= 0)
        assert rounds >= 1

    def test_integral_input_is_respected(self):
        p = PlacementProblem.build({"a": 1.0, "b": 1.0}, 2, {})
        frac = make_fractional(p, [[1.0, 0.0], [0.0, 1.0]])
        placement, _ = round_fractional(frac, rng=1)
        assert placement.assignment.tolist() == [0, 1]

    def test_deterministic_under_seed(self, uniform_fractional):
        _, frac = uniform_fractional
        p1, _ = round_fractional(frac, rng=42)
        p2, _ = round_fractional(frac, rng=42)
        assert np.array_equal(p1.assignment, p2.assignment)

    def test_lemma1_marginals(self):
        """Lemma 1: object i lands on node k with probability x[i,k]."""
        p = PlacementProblem.build({"a": 1.0, "b": 1.0}, 3, {})
        target = np.array([[0.7, 0.2, 0.1], [0.1, 0.3, 0.6]])
        frac = make_fractional(p, target)
        rng = np.random.default_rng(0)
        counts = np.zeros((2, 3))
        trials = 4000
        for _ in range(trials):
            placement, _ = round_fractional(frac, rng)
            counts[0, placement.assignment[0]] += 1
            counts[1, placement.assignment[1]] += 1
        assert np.allclose(counts / trials, target, atol=0.03)

    def test_identical_rows_usually_colocate(self):
        """Correlated rounding: objects with identical fractions are
        placed together (Lemma 2 with z=0 -> separation probability 0)."""
        p = PlacementProblem.build(
            {"a": 1.0, "b": 1.0}, 4, {("a", "b"): 1.0}
        )
        frac = make_fractional(p, [[0.25] * 4, [0.25] * 4])
        rng = np.random.default_rng(1)
        for _ in range(200):
            placement, _ = round_fractional(frac, rng)
            assert placement.assignment[0] == placement.assignment[1]

    def test_theorem2_expected_cost_matches_lp(self):
        """Theorem 2: E[rounded cost] == LP optimum (within CI)."""
        p = PlacementProblem.build(
            {"a": 2.0, "b": 2.0, "c": 2.0},
            {0: 3.0, 1: 3.0},
            {("a", "b"): 1.0, ("b", "c"): 1.0, ("a", "c"): 1.0},
        )
        frac = solve_placement_lp(p)
        rng = np.random.default_rng(5)
        costs = [round_fractional(frac, rng)[0].communication_cost() for _ in range(3000)]
        mean = float(np.mean(costs))
        sem = float(np.std(costs) / np.sqrt(len(costs)))
        assert abs(mean - frac.lower_bound) < 5 * sem + 1e-6

    def test_nonconvergence_guard(self):
        p = PlacementProblem.build({"a": 1.0}, 2, {})
        # Degenerate row summing to ~0 can never be hit by a threshold > 0.
        frac = make_fractional(p, [[0.0, 0.0]])
        with pytest.raises(SolverError, match="did not converge"):
            round_fractional(frac, rng=0, max_rounds=50)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), t=st.integers(1, 8), n=st.integers(1, 5))
    def test_property_always_total_assignment(self, seed, t, n):
        rng = np.random.default_rng(seed)
        fractions = rng.dirichlet(np.ones(n), size=t)
        p = PlacementProblem.build({f"o{i}": 1.0 for i in range(t)}, n, {})
        frac = make_fractional(p, fractions)
        placement, _ = round_fractional(frac, rng=seed)
        assert placement.assignment.shape == (t,)
        assert np.all((0 <= placement.assignment) & (placement.assignment < n))


class TestRoundBestOf:
    def test_best_never_worse_than_mean(self, uniform_fractional):
        _, frac = uniform_fractional
        result = round_best_of(frac, trials=20, rng=0)
        assert result.cost <= np.mean(result.trial_costs) + 1e-12
        assert result.trials == 20
        assert len(result.trial_costs) == 20

    def test_single_trial(self, uniform_fractional):
        _, frac = uniform_fractional
        result = round_best_of(frac, trials=1, rng=0)
        assert result.cost_std == 0.0

    def test_zero_trials_rejected(self, uniform_fractional):
        _, frac = uniform_fractional
        with pytest.raises(ValueError):
            round_best_of(frac, trials=0)

    def test_capacity_filter_prefers_feasible(self):
        """With capacity-2 nodes and size-2 objects, co-located trials
        (cost 0) are infeasible and split trials (cost 2) are feasible;
        the filter must pick the more expensive feasible one."""
        p = PlacementProblem.build(
            {"a": 2.0, "b": 2.0}, {0: 2.0, 1: 2.0}, {("a", "b"): 1.0}
        )
        frac = make_fractional(p, [[0.6, 0.4], [0.4, 0.6]])
        result = round_best_of(frac, trials=50, rng=0, capacity_tolerance=0.0)
        assert result.placement.is_feasible()
        assert result.cost == pytest.approx(2.0)
        assert min(result.trial_costs) == pytest.approx(0.0)  # cheaper but infeasible

    def test_falls_back_to_cheapest_when_nothing_feasible(self):
        p = PlacementProblem.build({"a": 2.0, "b": 2.0}, 2, {("a", "b"): 1.0})
        frac = make_fractional(p, [[0.5, 0.5], [0.5, 0.5]])
        # Impossible tolerance: no placement fits zero-capacity nodes.
        tight = PlacementProblem.build(
            {"a": 2.0, "b": 2.0}, {0: 0.1, 1: 0.1}, {("a", "b"): 1.0}
        )
        frac_tight = make_fractional(tight, [[0.5, 0.5], [0.5, 0.5]])
        result = round_best_of(frac_tight, trials=5, rng=0, capacity_tolerance=0.0)
        assert result.cost == min(result.trial_costs)

    def test_more_trials_never_hurt(self, uniform_fractional):
        _, frac = uniform_fractional
        few = round_best_of(frac, trials=2, rng=7)
        many = round_best_of(frac, trials=50, rng=7)
        assert many.cost <= few.cost + 1e-12
