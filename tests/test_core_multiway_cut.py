"""Tests for the Theorem 1 reduction and the isolation heuristic."""

import networkx as nx
import pytest

from repro.core.exact import solve_exact
from repro.core.multiway_cut import (
    cca_from_multiway_cut,
    isolation_heuristic,
    multiway_cut_value,
    partition_from_placement,
)


def path_graph_instance():
    """t1 - a - t2 with unit weights: min multiway cut = 1."""
    g = nx.Graph()
    g.add_edge("t1", "a", weight=1.0)
    g.add_edge("a", "t2", weight=1.0)
    return g, ["t1", "t2"]


def triangle_instance():
    """Three terminals pairwise connected; any 2-of-3 edges form the cut."""
    g = nx.Graph()
    g.add_edge("t1", "t2", weight=1.0)
    g.add_edge("t2", "t3", weight=1.0)
    g.add_edge("t1", "t3", weight=1.0)
    return g, ["t1", "t2", "t3"]


class TestReduction:
    def test_terminals_forced_apart(self):
        g, terminals = path_graph_instance()
        problem = cca_from_multiway_cut(g, terminals)
        solution = solve_exact(problem)
        assert solution.placement.node_of("t1") != solution.placement.node_of("t2")

    def test_cca_optimum_equals_min_cut(self):
        g, terminals = path_graph_instance()
        problem = cca_from_multiway_cut(g, terminals)
        assert solve_exact(problem).cost == pytest.approx(1.0)

    def test_triangle_cut_value(self):
        g, terminals = triangle_instance()
        problem = cca_from_multiway_cut(g, terminals)
        assert solve_exact(problem).cost == pytest.approx(3.0)  # all edges cut

    def test_weighted_instance(self):
        g = nx.Graph()
        g.add_edge("t1", "a", weight=10.0)
        g.add_edge("a", "t2", weight=1.0)
        problem = cca_from_multiway_cut(g, ["t1", "t2"])
        # Cut the cheap edge: a stays with t1.
        solution = solve_exact(problem)
        assert solution.cost == pytest.approx(1.0)
        assert solution.placement.node_of("a") == solution.placement.node_of("t1")

    def test_partition_round_trip(self):
        g, terminals = path_graph_instance()
        problem = cca_from_multiway_cut(g, terminals)
        solution = solve_exact(problem)
        partition = partition_from_placement(solution.placement)
        assert multiway_cut_value(g, partition) == pytest.approx(solution.cost)

    def test_validation(self):
        g, _ = path_graph_instance()
        with pytest.raises(ValueError, match="at least two"):
            cca_from_multiway_cut(g, ["t1"])
        with pytest.raises(ValueError, match="distinct"):
            cca_from_multiway_cut(g, ["t1", "t1"])
        with pytest.raises(ValueError, match="not in graph"):
            cca_from_multiway_cut(g, ["t1", "zzz"])


class TestIsolationHeuristic:
    def test_exact_on_path(self):
        g, terminals = path_graph_instance()
        partition, value = isolation_heuristic(g, terminals)
        assert value == pytest.approx(1.0)
        assert partition["t1"] != partition["t2"]

    def test_terminals_in_own_parts(self):
        g, terminals = triangle_instance()
        partition, _ = isolation_heuristic(g, terminals)
        assert len({partition[t] for t in terminals}) == 3

    def test_approximation_ratio_bound(self):
        """On random graphs the heuristic is within 2 - 2/k of optimum."""
        import numpy as np

        rng = np.random.default_rng(0)
        g = nx.gnm_random_graph(8, 16, seed=1)
        for u, v in g.edges:
            g[u][v]["weight"] = float(rng.uniform(0.5, 2.0))
        terminals = [0, 1, 2]
        partition, value = isolation_heuristic(g, terminals)
        problem = cca_from_multiway_cut(g, terminals)
        optimum = solve_exact(problem).cost
        k = len(terminals)
        assert optimum <= value + 1e-9
        assert value <= (2 - 2 / k) * optimum + 1e-9

    def test_heuristic_value_consistent_with_partition(self):
        g, terminals = triangle_instance()
        partition, value = isolation_heuristic(g, terminals)
        assert value == pytest.approx(multiway_cut_value(g, partition))
