"""Tests for the LP modelling layer (repro.lpsolve.model)."""

import numpy as np
import pytest

from repro.exceptions import SolverError
from repro.lpsolve import LinearProgram, LPStatus, Sense
from repro.lpsolve.model import lp_from_arrays


class TestVariableCreation:
    def test_variables_get_sequential_indices(self):
        lp = LinearProgram()
        a = lp.add_variable("a")
        b = lp.add_variable("b")
        assert (a.index, b.index) == (0, 1)

    def test_auto_generated_names(self):
        lp = LinearProgram()
        v = lp.add_variable()
        assert v.name == "x0"
        assert lp.variable_name(0) == "x0"

    def test_add_variables_batch(self):
        lp = LinearProgram()
        batch = lp.add_variables(5, prefix="y", objective=2.0)
        assert len(batch) == 5
        assert lp.num_variables == 5
        assert np.allclose(lp.objective_vector(), 2.0)

    def test_default_bounds_are_nonnegative(self):
        lp = LinearProgram()
        v = lp.add_variable()
        assert v.lower == 0.0
        assert v.upper == float("inf")

    def test_invalid_bounds_rejected(self):
        lp = LinearProgram()
        with pytest.raises(ValueError, match="lower"):
            lp.add_variable(lower=2.0, upper=1.0)

    def test_variable_usable_as_index(self):
        lp = LinearProgram()
        v = lp.add_variable()
        values = np.array([42.0])
        assert values[v] == 42.0

    def test_set_objective_overwrites(self):
        lp = LinearProgram()
        v = lp.add_variable(objective=1.0)
        lp.set_objective(v, 3.0)
        assert lp.objective_vector()[0] == 3.0


class TestConstraintConstruction:
    def test_constraint_counts(self):
        lp = LinearProgram()
        x = lp.add_variable()
        y = lp.add_variable()
        lp.add_constraint([(x, 1.0), (y, 2.0)], Sense.LE, 5.0)
        lp.add_constraint([(x, 1.0)], Sense.EQ, 1.0)
        assert lp.num_constraints == 2
        assert lp.num_nonzeros == 3

    def test_unknown_variable_rejected(self):
        lp = LinearProgram()
        lp.add_variable()
        with pytest.raises(ValueError, match="unknown variable"):
            lp.add_constraint([(7, 1.0)], Sense.LE, 0.0)

    def test_duplicate_terms_sum(self):
        lp = LinearProgram()
        x = lp.add_variable(objective=1.0)
        lp.add_constraint([(x, 1.0), (x, 1.0)], Sense.GE, 4.0)
        result = lp.solve()
        assert result.is_optimal
        assert result.x[0] == pytest.approx(2.0)

    def test_split_by_sense_negates_ge(self):
        lp = LinearProgram()
        x = lp.add_variable()
        lp.add_constraint([(x, 2.0)], Sense.GE, 4.0)
        a_ub, b_ub, a_eq, b_eq = lp.split_by_sense()
        assert a_ub.toarray().tolist() == [[-2.0]]
        assert b_ub.tolist() == [-4.0]
        assert a_eq.shape[0] == 0 and b_eq.size == 0

    def test_repr_mentions_sizes(self):
        lp = LinearProgram("demo")
        lp.add_variable()
        assert "demo" in repr(lp)
        assert "variables=1" in repr(lp)


class TestSolving:
    def test_simple_minimum(self):
        lp = LinearProgram()
        x = lp.add_variable(objective=1.0)
        y = lp.add_variable(objective=2.0)
        lp.add_constraint([(x, 1.0), (y, 1.0)], Sense.GE, 3.0)
        result = lp.solve()
        assert result.is_optimal
        assert result.objective == pytest.approx(3.0)
        assert result.x[0] == pytest.approx(3.0)

    def test_equality_constraint(self):
        lp = LinearProgram()
        x = lp.add_variable(objective=1.0, upper=10.0)
        lp.add_constraint([(x, 1.0)], Sense.EQ, 7.0)
        result = lp.solve()
        assert result.objective == pytest.approx(7.0)

    def test_infeasible_detected(self):
        lp = LinearProgram()
        x = lp.add_variable(upper=1.0)
        lp.add_constraint([(x, 1.0)], Sense.GE, 2.0)
        assert lp.solve().status is LPStatus.INFEASIBLE

    def test_unbounded_detected(self):
        lp = LinearProgram()
        lp.add_variable(objective=-1.0)
        assert lp.solve().status is LPStatus.UNBOUNDED

    def test_empty_program_is_trivially_optimal(self):
        result = LinearProgram().solve()
        assert result.is_optimal
        assert result.objective == 0.0

    def test_unknown_backend_raises(self):
        lp = LinearProgram()
        lp.add_variable()
        with pytest.raises(SolverError, match="unknown LP backend"):
            lp.solve(backend="nope")

    def test_result_value_accessor(self):
        lp = LinearProgram()
        x = lp.add_variable(objective=1.0)
        lp.add_constraint([(x, 1.0)], Sense.GE, 1.5)
        result = lp.solve()
        assert result.value(x.index) == pytest.approx(1.5)

    def test_value_raises_without_solution(self):
        lp = LinearProgram()
        x = lp.add_variable(upper=0.0)
        lp.add_constraint([(x, 1.0)], Sense.GE, 1.0)
        result = lp.solve()
        with pytest.raises(ValueError, match="no solution"):
            result.value(0)


class TestLpFromArrays:
    def test_round_trip(self):
        lp = lp_from_arrays(
            objective=[1.0, 1.0],
            a_ub=np.array([[-1.0, -1.0]]),
            b_ub=[-4.0],
        )
        result = lp.solve()
        assert result.objective == pytest.approx(4.0)

    def test_missing_rhs_rejected(self):
        with pytest.raises(ValueError, match="b_ub"):
            lp_from_arrays([1.0], a_ub=np.array([[1.0]]))


class TestIntrospection:
    def test_constraint_names(self):
        lp = LinearProgram()
        x = lp.add_variable()
        named = lp.add_constraint([(x, 1.0)], Sense.LE, 1.0, name="cap")
        auto = lp.add_constraint([(x, 1.0)], Sense.GE, 0.0)
        assert lp.constraint_name(named.index) == "cap"
        assert lp.constraint_name(auto.index) == f"c{auto.index}"
        assert lp.constraint_index("cap") == named.index

    def test_unknown_constraint_name(self):
        lp = LinearProgram()
        with pytest.raises(KeyError, match="unknown constraint"):
            lp.constraint_index("ghost")

    def test_sense_order_blocks(self):
        lp = LinearProgram()
        x = lp.add_variable()
        le = lp.add_constraint([(x, 1.0)], Sense.LE, 1.0)
        eq = lp.add_constraint([(x, 1.0)], Sense.EQ, 0.5)
        ge = lp.add_constraint([(x, 1.0)], Sense.GE, 0.0)
        ub_rows, eq_rows = lp.sense_order()
        assert ub_rows.tolist() == [le.index, ge.index]
        assert eq_rows.tolist() == [eq.index]

    def test_sense_order_matches_split(self):
        import numpy as np

        lp = LinearProgram()
        x = lp.add_variable()
        y = lp.add_variable()
        lp.add_constraint([(x, 2.0)], Sense.GE, 1.0)
        lp.add_constraint([(y, 3.0)], Sense.LE, 5.0)
        a_ub, b_ub, _, _ = lp.split_by_sense()
        ub_rows, _ = lp.sense_order()
        # Row 0 of the block is the LE row (3.0 coefficient on y).
        assert a_ub.toarray()[0].tolist() == [0.0, 3.0]
        assert ub_rows[0] == 1  # original index of the LE row
