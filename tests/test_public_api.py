"""Public-API integrity: every exported name exists and is importable."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.lpsolve",
    "repro.search",
    "repro.cluster",
    "repro.database",
    "repro.workloads",
    "repro.analysis",
    "repro.experiments",
    "repro.online",
]


class TestExports:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_names_resolve(self, package):
        module = importlib.import_module(package)
        assert hasattr(module, "__all__"), f"{package} lacks __all__"
        for name in module.__all__:
            assert hasattr(module, name), f"{package}.{name} missing"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_sorted_unique(self, package):
        module = importlib.import_module(package)
        names = list(module.__all__)
        assert len(names) == len(set(names)), f"{package}.__all__ has duplicates"

    def test_top_level_version(self):
        import repro

        assert repro.__version__ == "1.9.0"

    def test_core_reexports_through_top_level(self):
        import repro

        for name in ("PlacementProblem", "LPRRPlanner", "Placement"):
            assert getattr(repro, name) is not None

    def test_exceptions_hierarchy(self):
        from repro.exceptions import (
            InfeasibleProblemError,
            PlacementError,
            ProblemDefinitionError,
            ReproError,
            SolverError,
            TraceFormatError,
        )

        for exc in (
            InfeasibleProblemError,
            PlacementError,
            ProblemDefinitionError,
            SolverError,
            TraceFormatError,
        ):
            assert issubclass(exc, ReproError)


class TestBackendSwitching:
    def test_auto_uses_simplex_compatible_result_small(self):
        from repro.lpsolve import LinearProgram, Sense

        lp = LinearProgram()
        x = lp.add_variable(objective=1.0)
        lp.add_constraint([(x, 1.0)], Sense.GE, 2.0)
        auto = lp.solve(backend="auto")
        explicit = lp.solve(backend="highs")
        assert auto.objective == pytest.approx(explicit.objective)

    def test_auto_threshold_constant_sane(self):
        from repro.lpsolve import LinearProgram

        assert LinearProgram.AUTO_IPM_THRESHOLD > 1000

    def test_ipm_backend_agrees_with_simplex(self):
        from repro.lpsolve import LinearProgram, Sense

        lp = LinearProgram()
        x = lp.add_variable(objective=2.0, upper=10.0)
        y = lp.add_variable(objective=3.0, upper=10.0)
        lp.add_constraint([(x, 1.0), (y, 1.0)], Sense.GE, 4.0)
        ds = lp.solve(backend="highs")
        ipm = lp.solve(backend="highs-ipm")
        assert ipm.objective == pytest.approx(ds.objective, abs=1e-6)
