"""Tests for replica-aware routing (repro.search.replicated_engine)
and the engine's union execution mode."""

import numpy as np
import pytest

from repro.core.problem import PlacementProblem
from repro.core.replication import ReplicatedPlacement
from repro.search.documents import Corpus, Document
from repro.search.engine import DistributedSearchEngine
from repro.search.index import ITEM_BYTES, InvertedIndex
from repro.search.query import QueryLog
from repro.search.replicated_engine import ReplicatedSearchEngine


@pytest.fixture
def index():
    docs = []
    for i in range(6):
        words = {"alpha"}
        if i < 2:
            words.add("rare")
        if i % 2 == 0:
            words.add("beta")
        docs.append(Document(f"d{i}", frozenset(words)))
    return InvertedIndex.from_corpus(Corpus(docs))


def replicated(index, rows, nodes=3):
    problem = PlacementProblem.build(
        {w: float(index.size_bytes(w)) for w in index.vocabulary}, nodes, {}
    )
    order = {w: i for i, w in enumerate(problem.object_ids)}
    assignment = np.zeros((problem.num_objects, len(next(iter(rows.values())))), dtype=np.int64)
    for word, copies in rows.items():
        assignment[order[word]] = copies
    return ReplicatedPlacement(problem, assignment)


class TestReplicatedRouting:
    def test_shared_copy_answers_locally(self, index):
        # rare: {0,1}, beta: {1,2} -> route through node 1, zero bytes.
        placement = replicated(
            index, {"rare": [0, 1], "beta": [1, 2], "alpha": [0, 2]}
        )
        engine = ReplicatedSearchEngine(index, placement)
        execution = engine.execute(["rare", "beta"])
        assert execution.bytes_transferred == 0
        assert execution.result_count == 1  # d0

    def test_disjoint_copies_pay_one_hop(self, index):
        placement = replicated(
            index, {"rare": [0, 1], "beta": [2, 0], "alpha": [1, 2]}
        )
        # rare {0,1} and beta {2,0} share node 0: still local.
        engine = ReplicatedSearchEngine(index, placement)
        assert engine.execute(["rare", "beta"]).bytes_transferred == 0

    def test_truly_disjoint_pays(self):
        docs = [Document(f"d{i}", frozenset({"x", "y"})) for i in range(4)]
        index = InvertedIndex.from_corpus(Corpus(docs))
        placement = replicated(index, {"x": [0, 1], "y": [2, 3]}, nodes=4)
        engine = ReplicatedSearchEngine(index, placement)
        execution = engine.execute(["x", "y"])
        assert execution.bytes_transferred == 4 * ITEM_BYTES
        assert execution.hops == 1

    def test_result_matches_global_intersection(self, index):
        placement = replicated(
            index, {"rare": [0, 1], "beta": [1, 2], "alpha": [0, 2]}
        )
        engine = ReplicatedSearchEngine(index, placement)
        for query in (["alpha"], ["alpha", "beta"], ["rare", "alpha", "beta"]):
            execution = engine.execute(query)
            assert execution.result_count == index.intersect(query).size

    def test_routing_beats_single_copy(self, index):
        """Replication gives the router options a single copy lacks."""
        single = DistributedSearchEngine(index, {"rare": 0, "beta": 1, "alpha": 2})
        placement = replicated(
            index, {"rare": [0, 1], "beta": [1, 2], "alpha": [2, 0]}
        )
        replicated_engine = ReplicatedSearchEngine(index, placement)
        log = QueryLog([("rare", "beta"), ("rare", "alpha"), ("beta", "alpha")])
        assert (
            replicated_engine.execute_log(log).total_bytes
            <= single.execute_log(log).total_bytes
        )

    def test_unknown_keywords_ignored(self, index):
        placement = replicated(
            index, {"rare": [0, 1], "beta": [1, 2], "alpha": [0, 2]}
        )
        engine = ReplicatedSearchEngine(index, placement)
        assert engine.execute(["zzz"]).result_count == 0

    def test_log_stats(self, index):
        placement = replicated(
            index, {"rare": [0, 1], "beta": [1, 2], "alpha": [0, 2]}
        )
        engine = ReplicatedSearchEngine(index, placement)
        stats = engine.execute_log(QueryLog([("rare", "beta"), ("alpha",)]))
        assert stats.queries == 2
        assert stats.local_fraction == 1.0


class TestUnionExecution:
    def test_union_ships_to_largest(self, index):
        engine = DistributedSearchEngine(index, {"rare": 0, "alpha": 1, "beta": 2})
        execution = engine.execute_union(["rare", "alpha"])
        # rare (2 postings) ships to alpha's node (6 postings).
        assert execution.bytes_transferred == 2 * ITEM_BYTES
        assert execution.result_count == 6  # alpha covers all docs

    def test_union_local_when_colocated(self, index):
        engine = DistributedSearchEngine(index, {w: 0 for w in index.vocabulary})
        assert engine.execute_union(["rare", "beta"]).bytes_transferred == 0

    def test_union_result_correct(self, index):
        engine = DistributedSearchEngine(index, {"rare": 0, "alpha": 1, "beta": 2})
        execution = engine.execute_union(["rare", "beta"])
        assert execution.result_count == index.union(["rare", "beta"]).size

    def test_union_log_mode(self, index):
        engine = DistributedSearchEngine(index, {"rare": 0, "alpha": 1, "beta": 2})
        stats = engine.execute_log(QueryLog([("rare", "alpha")]), mode="union")
        assert stats.total_bytes == 2 * ITEM_BYTES

    def test_invalid_mode_rejected(self, index):
        engine = DistributedSearchEngine(index, {})
        with pytest.raises(ValueError, match="unknown query mode"):
            engine.execute_log(QueryLog(), mode="xor")

    def test_union_empty_query(self, index):
        engine = DistributedSearchEngine(index, {})
        assert engine.execute_union([]).result_count == 0

class TestApplyView:
    def test_view_replaces_down_and_slow_sets(self, index):
        from repro.resilience.faults import ClusterView

        placement = replicated(
            index, {"rare": [0, 1], "beta": [1, 2], "alpha": [0, 2]}
        )
        engine = ReplicatedSearchEngine(index, placement, down_nodes=[2])
        engine.mark_slow(0)
        view = ClusterView(num_nodes=3, down=frozenset({1}), slow=frozenset({2}))
        engine.apply_view(view)
        # Wholesale replacement: the old down/slow markings are gone.
        assert engine.down_nodes == frozenset({1})
        assert engine.slow_nodes == frozenset({2})

    def test_isolated_nodes_treated_as_down(self, index):
        from repro.resilience.faults import ClusterView

        placement = replicated(
            index, {"rare": [0, 1], "beta": [1, 2], "alpha": [0, 2]}
        )
        engine = ReplicatedSearchEngine(index, placement)
        view = ClusterView(num_nodes=3, isolated=frozenset({0, 1}))
        engine.apply_view(view)
        assert engine.down_nodes == frozenset({0, 1})
        # rare's only copies (0 and 1) are unreachable -> unserved.
        execution = engine.execute(["rare", "beta"])
        assert not execution.served

    def test_routing_follows_the_view(self, index):
        from repro.resilience.faults import ClusterView

        placement = replicated(
            index, {"rare": [0, 1], "beta": [1, 2], "alpha": [0, 2]}
        )
        engine = ReplicatedSearchEngine(index, placement)
        engine.apply_view(ClusterView(num_nodes=3, down=frozenset({1})))
        # Node 1 (the shared copy) is gone: rare only on 0, beta only
        # on 2, so the pipeline must ship rare's postings once.
        execution = engine.execute(["rare", "beta"])
        assert execution.served
        assert execution.bytes_transferred > 0
        engine.apply_view(ClusterView(num_nodes=3))
        assert engine.execute(["rare", "beta"]).bytes_transferred == 0
