"""Tests for deterministic load generation (repro.serve.loadgen), the
OnlinePlanner publication hook, and the serve/loadgen CLI."""

import json

import pytest

from repro.cli import main
from repro.online import OnlineConfig, OnlinePlanner
from repro.online.windows import TimedOperation, tumbling_periods
from repro.serve import (
    LoadgenConfig,
    PlanSnapshot,
    ServeConfig,
    build_scenario,
    run_loadgen,
)

SMALL = dict(duration_s=1.0, qps=1500.0, seed=3)


def small_config(**overrides):
    params = dict(SMALL)
    params.update(overrides)
    return LoadgenConfig(**params)


class TestLoadgenDeterminism:
    def test_same_seed_is_byte_identical(self):
        first = run_loadgen(small_config())
        second = run_loadgen(small_config())
        assert first.to_json() == second.to_json()

    def test_different_seed_differs(self):
        first = run_loadgen(small_config())
        other = run_loadgen(small_config(seed=4))
        assert first.to_json() != other.to_json()


class TestLoadgenReport:
    @pytest.fixture(scope="class")
    def report(self):
        return run_loadgen(small_config())

    def test_conservation(self, report):
        assert report.completed + sum(report.shed.values()) == report.offered
        assert report.completed == report.admitted
        assert sum(report.queries_by_version.values()) == report.completed

    def test_hot_swaps_drop_nothing(self, report):
        assert report.swaps == 3
        assert report.dropped_in_flight == 0
        # Every published version served traffic, and a plan cost was
        # journaled for each.
        assert set(report.queries_by_version) == {1, 2, 3, 4}
        assert set(report.plan_costs) == {1, 2, 3, 4}

    def test_latency_percentiles_ordered(self, report):
        assert 0 < report.p50_ms <= report.p95_ms <= report.p99_ms
        assert report.makespan_s > 0
        assert report.throughput_qps > 0
        assert report.availability == 1.0

    def test_render_mentions_the_essentials(self, report):
        text = report.render()
        assert "plan swaps: 3" in text
        assert "in-flight dropped: 0" in text
        assert "p99" in text


class TestBatchingThroughput:
    def test_batched_beats_per_query_dispatch(self):
        batched = run_loadgen(small_config())
        per_query = run_loadgen(
            small_config(serve=ServeConfig(max_batch=1))
        )
        assert batched.mode == "batched"
        assert per_query.mode == "per_query"
        # The full-size acceptance ratio (>= 10x) is pinned by the
        # serve bench case; this scenario is deliberately small, so
        # just require an unambiguous win at no latency cost.
        assert batched.throughput_qps > 2.0 * per_query.throughput_qps
        assert batched.p99_ms <= per_query.p99_ms


class TestBuildScenario:
    def test_stream_spans_both_halves(self):
        config = small_config()
        index, stream, warmup = build_scenario(config)
        assert len(index) > 0
        assert len(warmup) == config.warmup_queries
        times = [timed.time_s for timed in stream]
        assert times == sorted(times)
        half = config.duration_s / 2.0
        assert any(t < half for t in times)
        assert any(t >= half for t in times)


class TestOnPublishHook:
    def test_hook_feeds_snapshots(self):
        published = []
        planner = OnlinePlanner(
            {"a": 1.0, "b": 1.0},
            OnlineConfig(num_nodes=2, window_s=10.0),
            on_publish=lambda period, mapping: published.append(
                (period, dict(mapping))
            ),
        )
        planner.run([TimedOperation(0.0, ("a", "b"))] * 30)
        assert published, "bootstrap must publish a plan"
        period, mapping = published[0]
        assert set(mapping) == {"a", "b"}
        assert all(node in (0, 1) for node in mapping.values())

    def test_no_publication_without_plan_change(self):
        published = []
        planner = OnlinePlanner(
            {"a": 1.0, "b": 1.0},
            OnlineConfig(num_nodes=2, window_s=10.0),
            on_publish=lambda *args: published.append(args),
        )
        # Too few operations to bootstrap: pure observation.
        period = next(
            iter(tumbling_periods([TimedOperation(0.0, ("a",))], window_s=10.0))
        )
        planner.observe_period(period)
        assert published == []


CLI_ARGS = [
    "loadgen",
    "--duration", "1.0",
    "--qps", "1500",
    "--seed", "3",
]


class TestLoadgenCli:
    def test_writes_report_and_renders(self, tmp_path, capsys):
        out = tmp_path / "serve.json"
        assert main([*CLI_ARGS, "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["schema"] == "repro.serve/v1"
        assert payload["dropped_in_flight"] == 0
        assert payload["swaps"] == 3
        stdout = capsys.readouterr().out
        assert "loadgen (batched)" in stdout

    def test_byte_identical_across_runs(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        ja, jb = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        main([*CLI_ARGS, "--out", str(a), "--journal", str(ja)])
        main([*CLI_ARGS, "--out", str(b), "--journal", str(jb)])
        assert a.read_bytes() == b.read_bytes()
        assert ja.read_bytes() == jb.read_bytes()

    def test_journal_records_serve_events(self, tmp_path, capsys):
        journal = tmp_path / "serve.jsonl"
        main([*CLI_ARGS, "--journal", str(journal)])
        kinds = {
            json.loads(line)["kind"]
            for line in journal.read_text().splitlines()
        }
        assert {"serve.start", "serve.swap", "serve.batch", "serve.end"} <= kinds

    def test_per_query_mode_via_max_batch(self, capsys):
        assert main([*CLI_ARGS, "--max-batch", "1", "--qps", "300"]) == 0
        assert "loadgen (per_query)" in capsys.readouterr().out
