"""Tests for the optional CP-SAT exact backend (repro.lpsolve.cpsat_backend).

The ``ortools`` dependency is optional (the ``repro[exact]`` extra) and
absent from CI, so the solver tests skip without it while the graceful
degradation paths — the install-hint error and the guarded registry
entry — are asserted either way.
"""

import pytest

from repro.core.strategies import available_planners
from repro.exceptions import SolverError
from repro.gap import gap_instance
from repro.lpsolve.cpsat_backend import HAS_ORTOOLS, solve_placement_cpsat


class TestWithoutOrtools:
    def test_missing_dependency_raises_install_hint(self):
        if HAS_ORTOOLS:
            pytest.skip("ortools installed; degradation path unreachable")
        with pytest.raises(SolverError, match="repro\\[exact\\]"):
            solve_placement_cpsat(gap_instance(0, 0, objects=6))

    def test_registry_matches_availability(self):
        # The planner is only registered when it can actually plan, so
        # iterating available_planners() never hits a SolverError.
        assert ("exact:cpsat" in available_planners()) == HAS_ORTOOLS


class TestWithOrtools:
    @pytest.fixture(autouse=True)
    def _require_ortools(self):
        pytest.importorskip("ortools")

    def test_matches_branch_and_bound(self):
        from repro.core.exact import solve_exact

        for index in range(3):
            problem = gap_instance(1, index, objects=8, nodes=3)
            exact = solve_exact(problem)
            cpsat = solve_placement_cpsat(problem, seed=1)
            assert cpsat.cost == pytest.approx(exact.cost, abs=1e-6)
            assert cpsat.optimal

    def test_bound_is_consistent(self):
        problem = gap_instance(2, 0, objects=8, nodes=3)
        solution = solve_placement_cpsat(problem, seed=2)
        assert solution.objective_bound <= solution.cost + 1e-6

    def test_validation(self):
        problem = gap_instance(0, 0, objects=6)
        with pytest.raises(ValueError):
            solve_placement_cpsat(problem, workers=0)
        with pytest.raises(ValueError):
            solve_placement_cpsat(problem, time_limit=0.0)
