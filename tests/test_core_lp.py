"""Tests for the LP relaxation (repro.core.lp)."""

import numpy as np
import pytest

from repro.core.lp import build_placement_lp, solve_placement_lp
from repro.core.problem import PlacementProblem
from repro.exceptions import InfeasibleProblemError


@pytest.fixture
def two_cluster_problem():
    return PlacementProblem.build(
        objects={"a": 2.0, "b": 2.0, "c": 2.0, "d": 2.0},
        nodes={0: 4.0, 1: 4.0},
        correlations={("a", "b"): 0.5, ("c", "d"): 0.5},
    )


class TestProgramShape:
    def test_variable_count(self, two_cluster_problem):
        # x: 4*2 = 8; y: 2 pairs * 2 nodes = 4.
        lp = build_placement_lp(two_cluster_problem)
        assert lp.num_variables == 12

    def test_constraint_count(self, two_cluster_problem):
        # assign: 4; y-definitions: 2 pairs * 2 nodes = 4; capacity: 2.
        lp = build_placement_lp(two_cluster_problem)
        assert lp.num_constraints == 10

    def test_infinite_capacity_skips_rows(self):
        p = PlacementProblem.build({"a": 1.0, "b": 1.0}, 2, {("a", "b"): 0.5})
        lp = build_placement_lp(p)
        # assign: 2; y-defs: 1 pair * 2 nodes = 2; no capacity rows.
        assert lp.num_constraints == 4

    def test_zero_weight_pairs_excluded(self):
        p = PlacementProblem.build(
            {"a": 1.0, "b": 1.0}, 2, {("a", "b"): 0.0}
        )
        lp = build_placement_lp(p)
        assert lp.num_variables == 4  # x only, no y for weightless pair

    def test_size_growth_matches_section_3_1(self):
        """Variables and constraints grow as O(|T| * |N|) for sparse E."""
        def build(t, n):
            objects = {f"o{i}": 1.0 for i in range(t)}
            corr = {(f"o{i}", f"o{i+1}"): 0.1 for i in range(t - 1)}
            return build_placement_lp(PlacementProblem.build(objects, n, corr))

        small, big = build(10, 4), build(20, 4)
        assert big.num_variables < 2.5 * small.num_variables
        assert big.num_constraints < 2.5 * small.num_constraints


class TestRelaxationSolutions:
    def test_separable_clusters_get_integral_optimum(self, two_cluster_problem):
        frac = solve_placement_lp(two_cluster_problem)
        assert frac.lower_bound == pytest.approx(0.0, abs=1e-8)
        assert frac.is_integral(tolerance=1e-4)

    def test_rows_sum_to_one(self, two_cluster_problem):
        frac = solve_placement_lp(two_cluster_problem)
        assert np.allclose(frac.fractions.sum(axis=1), 1.0)

    def test_lower_bound_below_any_integral_cost(self):
        """The LP optimum lower-bounds every feasible integral placement."""
        rng = np.random.default_rng(3)
        objects = {f"o{i}": float(rng.uniform(1, 3)) for i in range(6)}
        corr = {
            (f"o{i}", f"o{j}"): float(rng.uniform(0, 1))
            for i in range(6)
            for j in range(i + 1, 6)
            if rng.random() < 0.6
        }
        p = PlacementProblem.build(objects, {0: 8.0, 1: 8.0, 2: 8.0}, corr)
        frac = solve_placement_lp(p)

        from repro.core.exact import solve_exact

        exact = solve_exact(p)
        assert frac.lower_bound <= exact.cost + 1e-8

    def test_relaxation_is_weak_under_tight_capacity(self):
        """A pair of size-3 objects with capacity-4 nodes must split
        integrally (cost 3), but the relaxation puts both at (1/2, 1/2)
        — zero cost and expected load 3 <= 4.  This is the weakness
        Theorem 3 (expected-capacity only) leaves open and why the
        paper recommends conservative capacities."""
        p = PlacementProblem.build(
            {"a": 3.0, "b": 3.0}, {0: 4.0, 1: 4.0}, {("a", "b"): 1.0}
        )
        frac = solve_placement_lp(p)
        assert frac.lower_bound == pytest.approx(0.0, abs=1e-8)
        assert np.all(frac.expected_node_loads() <= p.capacities + 1e-6)

        from repro.core.exact import solve_exact

        assert solve_exact(p).cost == pytest.approx(3.0)

    def test_expected_node_loads_respect_capacity(self, two_cluster_problem):
        frac = solve_placement_lp(two_cluster_problem)
        loads = frac.expected_node_loads()
        assert np.all(loads <= two_cluster_problem.capacities + 1e-6)

    def test_infeasible_capacity_raises(self):
        p = PlacementProblem.build(
            {"a": 3.0, "b": 3.0}, {0: 2.0, 1: 2.0}, {("a", "b"): 1.0}
        )
        with pytest.raises(InfeasibleProblemError):
            solve_placement_lp(p)

    def test_trivially_infeasible_raises_before_solving(self):
        p = PlacementProblem.build({"a": 10.0}, {0: 1.0}, {})
        with pytest.raises(InfeasibleProblemError, match="total object size"):
            solve_placement_lp(p)

    def test_stats_populated(self, two_cluster_problem):
        frac = solve_placement_lp(two_cluster_problem)
        assert frac.stats.num_variables == 12
        assert frac.stats.num_constraints == 10
        assert frac.stats.solve_seconds >= 0
        assert "vars" in str(frac.stats)

    def test_simplex_backend_agrees_with_highs(self, two_cluster_problem):
        highs = solve_placement_lp(two_cluster_problem, backend="highs")
        simplex = solve_placement_lp(two_cluster_problem, backend="simplex")
        assert simplex.lower_bound == pytest.approx(highs.lower_bound, abs=1e-6)

    def test_fractional_symmetric_instance(self):
        """A symmetric triangle on 2 nodes has a fractional-friendly LP;
        the LP bound can be strictly below the best integral cost."""
        p = PlacementProblem.build(
            {"a": 2.0, "b": 2.0, "c": 2.0},
            {0: 4.0, 1: 4.0},
            {("a", "b"): 1.0, ("b", "c"): 1.0, ("a", "c"): 1.0},
        )
        frac = solve_placement_lp(p)
        from repro.core.exact import solve_exact

        exact = solve_exact(p)
        # Any integral placement splits at least two pairs (cost 4);
        # the LP may do better fractionally but never worse.
        assert exact.cost == pytest.approx(4.0)
        assert frac.lower_bound <= 4.0 + 1e-9
