"""The package version must be declared once, consistently.

``repro.__version__`` (the runtime constant) and the packaging
metadata must agree — they drifted once (1.2.0 vs 1.3.0) and the skew
shipped.  When the package is installed, ``importlib.metadata`` is the
source of truth; in a source checkout the test falls back to parsing
``pyproject.toml`` directly.
"""

import importlib.metadata
import re
import tomllib
from pathlib import Path

import repro

PYPROJECT = Path(__file__).resolve().parent.parent / "pyproject.toml"


def _declared_version() -> str:
    try:
        return importlib.metadata.version("repro")
    except importlib.metadata.PackageNotFoundError:
        with PYPROJECT.open("rb") as fh:
            return tomllib.load(fh)["project"]["version"]


class TestVersionConsistency:
    def test_runtime_matches_packaging_metadata(self):
        assert repro.__version__ == _declared_version()

    def test_version_is_semver(self):
        assert re.fullmatch(r"\d+\.\d+\.\d+", repro.__version__)

    def test_version_exported(self):
        assert "__version__" in repro.__all__
