"""Tests for queries and query logs (repro.search.query)."""

import pytest

from repro.exceptions import TraceFormatError
from repro.search.query import Query, QueryLog


class TestQuery:
    def test_parse_lowercases(self):
        q = Query.parse("Car DEALER")
        assert q.keywords == ("car", "dealer")

    def test_parse_keeps_stopwords(self):
        # Queries are user text; stopword removal happens at indexing.
        q = Query.parse("the matrix")
        assert "the" in q.keywords

    def test_distinct_keywords(self):
        q = Query(("a", "b", "a"))
        assert q.distinct_keywords == frozenset({"a", "b"})
        assert len(q) == 3

    def test_iteration(self):
        assert list(Query(("x", "y"))) == ["x", "y"]


class TestQueryLog:
    def test_append_wraps_sequences(self):
        log = QueryLog()
        log.append(["Car", "Dealer"])
        assert log[0].keywords == ("car", "dealer")

    def test_average_keywords(self):
        log = QueryLog([("a",), ("a", "b"), ("a", "b", "c")])
        assert log.average_keywords() == pytest.approx(2.0)

    def test_empty_log_statistics(self):
        log = QueryLog()
        assert log.average_keywords() == 0.0
        assert log.multi_keyword_fraction() == 0.0
        assert log.vocabulary() == set()

    def test_vocabulary(self):
        log = QueryLog([("a", "b"), ("b", "c")])
        assert log.vocabulary() == {"a", "b", "c"}

    def test_keyword_frequencies_count_queries_not_occurrences(self):
        log = QueryLog([("a", "a", "b"), ("a",)])
        freq = log.keyword_frequencies()
        assert freq["a"] == 2
        assert freq["b"] == 1

    def test_multi_keyword_fraction(self):
        log = QueryLog([("a",), ("a", "b"), ("c", "c")])
        # ("c", "c") has only one distinct keyword.
        assert log.multi_keyword_fraction() == pytest.approx(1 / 3)

    def test_operations_iterator(self):
        log = QueryLog([("a", "b")])
        assert list(log.operations()) == [("a", "b")]

    def test_restricted_to_vocabulary(self):
        log = QueryLog([("a", "zzz"), ("zzz",), ("b", "c")])
        restricted = log.restricted_to({"a", "b", "c"})
        assert len(restricted) == 2
        assert restricted[0].keywords == ("a",)

    def test_save_load_round_trip(self, tmp_path):
        log = QueryLog([("car", "dealer"), ("software",)])
        path = tmp_path / "queries.txt"
        log.save(path)
        loaded = QueryLog.load(path)
        assert [q.keywords for q in loaded] == [q.keywords for q in log]

    def test_load_skips_blank_lines(self, tmp_path):
        path = tmp_path / "queries.txt"
        path.write_text("car dealer\n\nsoftware\n")
        assert len(QueryLog.load(path)) == 2

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(TraceFormatError, match="cannot read"):
            QueryLog.load(tmp_path / "nope.txt")

    def test_load_junk_line_raises(self, tmp_path):
        path = tmp_path / "queries.txt"
        path.write_text("!!! ???\n")
        with pytest.raises(TraceFormatError, match="no parseable keywords"):
            QueryLog.load(path)

    def test_repr(self):
        log = QueryLog([("a", "b")])
        assert "queries=1" in repr(log)
