"""Tests for the query-latency simulator (repro.search.simulation)."""

import numpy as np
import pytest

from repro.core.placement import Placement
from repro.search.documents import Corpus, Document
from repro.search.engine import build_placement_problem
from repro.search.index import InvertedIndex
from repro.search.query import QueryLog
from repro.search.simulation import LatencyReport, TimingModel, simulate_latencies


@pytest.fixture
def setup():
    docs = [
        Document(f"d{i}", frozenset({"alpha", "beta"} if i < 4 else {"alpha", "gamma"}))
        for i in range(8)
    ]
    corpus = Corpus(docs)
    index = InvertedIndex.from_corpus(corpus)
    log = QueryLog([("alpha", "beta")] * 20)
    problem = build_placement_problem(index, log, {0: float("inf"), 1: float("inf")})
    return index, log, problem


def colocated(problem):
    return Placement(problem, np.zeros(problem.num_objects, dtype=np.int64))


def split(problem):
    assignment = np.zeros(problem.num_objects, dtype=np.int64)
    assignment[problem.object_index("beta")] = 1
    return Placement(problem, assignment)


class TestTimingModel:
    def test_transfer_time_components(self):
        timing = TimingModel(bandwidth_bytes_per_s=100.0, link_latency_s=1.0)
        assert timing.transfer_time(200) == pytest.approx(3.0)

    def test_scan_time(self):
        timing = TimingModel(scan_bytes_per_s=50.0)
        assert timing.scan_time(100) == pytest.approx(2.0)


class TestSimulation:
    def test_report_shape(self, setup):
        index, log, problem = setup
        report = simulate_latencies(index, colocated(problem), log, seed=1)
        assert report.latencies_s.shape == (20,)
        assert np.all(report.latencies_s >= 0)
        assert report.makespan_s > 0

    def test_colocated_faster_than_split(self, setup):
        index, log, problem = setup
        local = simulate_latencies(index, colocated(problem), log, seed=1)
        remote = simulate_latencies(index, split(problem), log, seed=1)
        assert remote.mean_s > local.mean_s

    def test_split_placement_uses_uplinks(self, setup):
        index, log, problem = setup
        local = simulate_latencies(index, colocated(problem), log, seed=1)
        remote = simulate_latencies(index, split(problem), log, seed=1)
        assert local.uplink_busy_s.sum() == 0.0
        assert remote.uplink_busy_s.sum() > 0.0

    def test_contention_grows_with_load(self, setup):
        index, log, problem = setup
        slow_wire = TimingModel(bandwidth_bytes_per_s=1e3, link_latency_s=1e-3)
        light = simulate_latencies(
            index, split(problem), log, arrival_rate_qps=1.0, timing=slow_wire, seed=2
        )
        heavy = simulate_latencies(
            index, split(problem), log, arrival_rate_qps=10_000.0, timing=slow_wire, seed=2
        )
        assert heavy.mean_s > light.mean_s  # queueing delay appears

    def test_deterministic_under_seed(self, setup):
        index, log, problem = setup
        a = simulate_latencies(index, split(problem), log, seed=7)
        b = simulate_latencies(index, split(problem), log, seed=7)
        assert np.allclose(a.latencies_s, b.latencies_s)

    def test_percentiles_ordered(self, setup):
        index, log, problem = setup
        report = simulate_latencies(index, split(problem), log, seed=1)
        assert report.percentile_s(50) <= report.percentile_s(95) <= report.percentile_s(99)

    def test_utilization_bounded(self, setup):
        index, log, problem = setup
        report = simulate_latencies(index, split(problem), log, seed=1)
        util = report.uplink_utilization()
        assert np.all(util >= 0) and np.all(util <= 1 + 1e-9)

    def test_invalid_rate_rejected(self, setup):
        index, log, problem = setup
        with pytest.raises(ValueError):
            simulate_latencies(index, colocated(problem), log, arrival_rate_qps=0)

    def test_empty_report(self):
        report = LatencyReport(np.empty(0), np.zeros(2), 0.0)
        assert report.mean_s == 0.0
        assert report.percentile_s(95) == 0.0
        assert np.all(report.uplink_utilization() == 0.0)

    def test_unknown_keywords_cost_nothing(self, setup):
        index, _, problem = setup
        log = QueryLog([("zzz", "yyy")])
        report = simulate_latencies(index, colocated(problem), log, seed=0)
        assert report.latencies_s[0] == pytest.approx(0.0)
