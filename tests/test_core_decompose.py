"""Tests for component decomposition (repro.core.decompose)."""

import numpy as np
import pytest

from repro.core.decompose import (
    UnionFind,
    component_subproblems,
    correlation_components,
)
from repro.core.lprr import LPRRPlanner
from repro.core.problem import PlacementProblem


class TestUnionFind:
    def test_initial_singletons(self):
        dsu = UnionFind(3)
        assert dsu.groups() == [[0], [1], [2]]

    def test_union_merges(self):
        dsu = UnionFind(4)
        assert dsu.union(0, 1)
        assert dsu.union(2, 3)
        assert dsu.groups() == [[0, 1], [2, 3]]

    def test_union_idempotent(self):
        dsu = UnionFind(2)
        assert dsu.union(0, 1)
        assert not dsu.union(1, 0)

    def test_transitive_chain(self):
        dsu = UnionFind(5)
        for a, b in ((0, 1), (1, 2), (3, 4)):
            dsu.union(a, b)
        assert dsu.find(0) == dsu.find(2)
        assert dsu.find(3) != dsu.find(0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            UnionFind(-1)

    def test_empty(self):
        assert UnionFind(0).groups() == []


@pytest.fixture
def problem():
    # Components: {a, b, c} (chain), {d, e}, singleton {f}; g has a
    # zero-weight pair with f (must NOT connect them).
    return PlacementProblem.build(
        objects={"a": 1.0, "b": 1.0, "c": 1.0, "d": 5.0, "e": 5.0, "f": 2.0, "g": 1.0},
        nodes=3,
        correlations={
            ("a", "b"): 0.5,
            ("b", "c"): 0.5,
            ("d", "e"): 0.9,
            ("f", "g"): 0.0,
        },
    )


class TestComponents:
    def test_structure(self, problem):
        components = correlation_components(problem)
        as_sets = [set(c) for c in components]
        assert {"a", "b", "c"} in as_sets
        assert {"d", "e"} in as_sets
        assert {"f"} in as_sets
        assert {"g"} in as_sets

    def test_ordered_by_bytes_descending(self, problem):
        components = correlation_components(problem)
        sizes = [sum(problem.size_of(o) for o in c) for c in components]
        assert sizes == sorted(sizes, reverse=True)

    def test_zero_weight_pairs_do_not_connect(self, problem):
        components = correlation_components(problem)
        for component in components:
            assert not {"f", "g"} <= set(component)

    def test_no_pairs_all_singletons(self):
        p = PlacementProblem.build({"a": 1.0, "b": 2.0}, 2, {})
        assert [set(c) for c in correlation_components(p)] == [{"b"}, {"a"}]


class TestComponentSubproblems:
    def test_split_and_leftovers(self, problem):
        subs, leftovers = component_subproblems(problem)
        assert {tuple(sorted(map(str, s.object_ids))) for s in subs} == {
            ("a", "b", "c"),
            ("d", "e"),
        }
        assert set(leftovers) == {"f", "g"}

    def test_pairs_preserved_within_components(self, problem):
        subs, _ = component_subproblems(problem)
        total_pairs = sum(s.num_pairs for s in subs)
        positive = int((problem.pair_weights > 0).sum())
        assert total_pairs == positive

    def test_capacity_override(self, problem):
        subs, _ = component_subproblems(problem, capacities=np.array([9.0, 9.0, 9.0]))
        assert all(s.capacities.tolist() == [9.0, 9.0, 9.0] for s in subs)

    def test_min_size_keeps_small_components(self, problem):
        subs, leftovers = component_subproblems(problem, min_size=1)
        assert leftovers == []
        assert len(subs) == 4


class TestDecomposedPlanner:
    def test_matches_monolithic_quality(self):
        rng = np.random.default_rng(0)
        objects = {f"o{i}": float(rng.uniform(1, 2)) for i in range(24)}
        correlations = {}
        for c in range(6):  # six 4-cliques
            members = [f"o{4*c + k}" for k in range(4)]
            for i in range(4):
                for j in range(i + 1, 4):
                    correlations[(members[i], members[j])] = 0.5
        total = sum(objects.values())
        problem = PlacementProblem.build(
            objects, {k: total for k in range(6)}, correlations
        )

        mono = LPRRPlanner(
            seed=0, rounding_trials=10, capacity_factor=None
        ).plan(problem)
        deco = LPRRPlanner(
            seed=0, rounding_trials=10, capacity_factor=None, decompose=True
        ).plan(problem)
        # Both colocate every clique: zero cost.
        assert mono.cost == pytest.approx(0.0)
        assert deco.cost == pytest.approx(0.0)
        assert deco.lp_lower_bound == pytest.approx(mono.lp_lower_bound, abs=1e-6)

    def test_decomposed_respects_capacity_via_repair(self):
        objects = {f"o{i}": 1.0 for i in range(12)}
        correlations = {
            (f"o{3*c}", f"o{3*c + k}"): 0.5 for c in range(4) for k in (1, 2)
        }
        problem = PlacementProblem.build(objects, 4, correlations)
        result = LPRRPlanner(
            seed=1, decompose=True, capacity_factor=1.1, rounding_trials=10
        ).plan(problem)
        loads = result.placement.node_loads()
        assert loads.max() <= 1.1 * problem.total_size / 4 * 1.1 + 1e-9

    def test_stats_aggregate_components(self):
        p = PlacementProblem.build(
            {"a": 1.0, "b": 1.0, "c": 1.0, "d": 1.0},
            2,
            {("a", "b"): 0.5, ("c", "d"): 0.5},
        )
        deco = LPRRPlanner(seed=0, decompose=True).plan(p)
        mono = LPRRPlanner(seed=0).plan(p)
        # Same variable totals: the x and y blocks split cleanly.
        assert deco.lp_stats.num_variables == mono.lp_stats.num_variables

    def test_singletons_hash_placed(self):
        p = PlacementProblem.build(
            {"a": 1.0, "b": 1.0, "lonely": 1.0}, 4, {("a", "b"): 0.5}
        )
        from repro.core.hashing import hash_node

        result = LPRRPlanner(seed=0, decompose=True, hash_salt="s").plan(p)
        expected = hash_node("lonely", 4, "s")
        assert result.placement.assignment[p.object_index("lonely")] == expected
