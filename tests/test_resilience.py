"""Tests for the resilience subsystem (repro.resilience)."""

import json

import numpy as np
import pytest

from repro import obs
from repro.cluster.cluster import Cluster
from repro.core.placement import Placement
from repro.core.problem import PlacementProblem
from repro.core.replication import ReplicatedPlacement
from repro.core.strategies import PlanConfig, plan
from repro.exceptions import (
    CircuitOpenError,
    PlacementError,
    SolverError,
)
from repro.resilience import (
    ChaosConfig,
    CircuitBreaker,
    ClusterView,
    FaultEvent,
    FaultSchedule,
    FaultState,
    RetryPolicy,
    backend_breaker,
    mode_stats,
    plan_with_fallbacks,
    replace_lost_objects,
    reset_backend_breakers,
    retry_with_backoff,
    run_chaos,
    synthetic_scenario,
)


@pytest.fixture(autouse=True)
def _fresh_breakers():
    reset_backend_breakers()
    yield
    reset_backend_breakers()


@pytest.fixture
def problem():
    return PlacementProblem.build(
        objects={"a": 2.0, "b": 2.0, "c": 2.0, "d": 2.0},
        nodes={"n0": 10.0, "n1": 10.0, "n2": 10.0},
        correlations={("a", "b"): 0.5, ("c", "d"): 0.4},
    )


@pytest.fixture
def placement(problem):
    # a,b on n0; c on n1; d on n2.
    return Placement(problem, np.array([0, 0, 1, 2]))


# ----------------------------------------------------------------------
# Fault schedules
# ----------------------------------------------------------------------
class TestFaultEvents:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent(0, "meteor", (1,))

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="nonnegative"):
            FaultEvent(-1, "crash", (0,))

    def test_round_trip(self):
        event = FaultEvent(3, "partition", (0, 2))
        assert FaultEvent.from_dict(event.to_dict()) == event


class TestFaultSchedule:
    def test_random_is_deterministic(self):
        a = FaultSchedule.random(5, 50, seed=7, events=8)
        b = FaultSchedule.random(5, 50, seed=7, events=8)
        assert a.events == b.events
        assert len(a) > 0

    def test_different_seeds_differ(self):
        a = FaultSchedule.random(5, 50, seed=0, events=8)
        b = FaultSchedule.random(5, 50, seed=1, events=8)
        assert a.events != b.events

    def test_unsorted_events_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            FaultSchedule(3, (FaultEvent(5, "crash", (0,)), FaultEvent(1, "recover", (0,))))

    def test_unknown_node_rejected(self):
        with pytest.raises(ValueError, match="unknown node"):
            FaultSchedule(2, (FaultEvent(1, "crash", (7,)),))

    def test_never_crashes_more_than_half(self):
        schedule = FaultSchedule.random(
            4, 200, seed=3, events=40, max_down_fraction=0.5
        )
        down = set()
        for event in schedule.events:
            if event.kind == "crash":
                down.update(event.nodes)
            elif event.kind == "recover":
                down.difference_update(event.nodes)
            assert len(down) <= 2

    def test_epochs_cover_horizon(self):
        schedule = FaultSchedule(
            3, (FaultEvent(4, "crash", (1,)), FaultEvent(8, "recover", (1,)))
        )
        epochs = list(schedule.epochs(12))
        assert [(e.start, e.end) for e in epochs] == [(0, 4), (4, 8), (8, 12)]
        assert epochs[0].view.healthy
        assert epochs[1].view.down == {1}
        assert epochs[2].view.down == frozenset()

    def test_events_past_horizon_ignored(self):
        schedule = FaultSchedule(3, (FaultEvent(20, "crash", (0,)),))
        epochs = list(schedule.epochs(10))
        assert len(epochs) == 1
        assert epochs[0].view.healthy

    def test_schedule_round_trip(self):
        schedule = FaultSchedule.random(4, 30, seed=2, events=5)
        assert FaultSchedule.from_dict(schedule.to_dict()).events == schedule.events

    def test_fault_state_counts_events(self):
        inst = obs.enable(obs.Instrumentation())
        try:
            state = FaultState(3)
            state.apply(FaultEvent(0, "crash", (1,)))
            state.apply(FaultEvent(1, "slow", (0,)))
        finally:
            obs.disable()
        assert inst.metrics.counter("faults.injected").value == 2
        assert inst.metrics.counter("faults.crash").value == 1
        view = state.view()
        assert view.down == {1} and view.slow == {0}


class TestClusterView:
    def test_groups_without_partition(self):
        view = ClusterView(4, down=frozenset({3}))
        assert view.groups() == (frozenset({0, 1, 2}),)

    def test_groups_with_partition(self):
        view = ClusterView(4, down=frozenset({0}), isolated=frozenset({0, 1}))
        assert set(view.groups()) == {frozenset({2, 3}), frozenset({1})}

    def test_all_down_no_groups(self):
        assert ClusterView(2, down=frozenset({0, 1})).groups() == ()


# ----------------------------------------------------------------------
# Degraded-mode analytics
# ----------------------------------------------------------------------
class TestModeStats:
    def test_healthy_view_full_service(self, placement):
        stats = mode_stats(placement, ClusterView(3), [("a", "b"), ("c", "d")])
        assert stats.operation_availability == 1.0
        assert stats.object_availability == 1.0
        assert stats.lost_objects == 0
        assert stats.cost_inflation == 1.0

    def test_crash_loses_objects_and_operations(self, placement):
        view = ClusterView(3, down=frozenset({0}))
        stats = mode_stats(placement, view, [("a", "b"), ("c", "d"), ("a", "c")])
        assert stats.lost_objects == 2  # a and b
        assert stats.servable_operations == 1  # only (c, d)
        assert stats.object_availability == pytest.approx(0.5)
        # The (a, b) pair weight (r * min size = 0.5 * 2) is lost, not inflated.
        assert stats.lost_pair_weight == pytest.approx(1.0)

    def test_partition_blocks_cross_side_operations(self, placement):
        # a,b,c reachable on one side (n0, n1); d alone on n2.
        view = ClusterView(3, isolated=frozenset({2}))
        stats = mode_stats(placement, view, [("a", "b"), ("c", "d")])
        assert stats.lost_objects == 0  # every object is alive somewhere
        assert stats.servable_operations == 1  # only (a, b); (c, d) spans the cut
        assert stats.lost_pair_weight == pytest.approx(0.8)  # (c, d): 0.4 * 2

    def test_replicated_copy_survives(self, problem):
        replicated = ReplicatedPlacement(
            problem, np.array([[0, 1], [0, 2], [1, 2], [2, 0]])
        )
        view = ClusterView(3, down=frozenset({0}))
        stats = mode_stats(replicated, view, [("a", "b"), ("c", "d")])
        assert stats.lost_objects == 0
        assert stats.operation_availability == 1.0

    def test_inflation_when_colocated_copies_die(self, problem):
        # a,b colocated on n0 with spares split; n0 down => pair goes remote.
        replicated = ReplicatedPlacement(
            problem, np.array([[0, 1], [0, 2], [1, 0], [1, 2]])
        )
        healthy = replicated.communication_cost()
        assert healthy == 0.0  # everything colocated somewhere
        stats = mode_stats(
            replicated, ClusterView(3, down=frozenset({0})), [("a", "b")], healthy
        )
        assert stats.degraded_cost == pytest.approx(1.0)  # (a, b): 0.5 * 2
        assert stats.cost_inflation == pytest.approx(1.0)  # over zero healthy


# ----------------------------------------------------------------------
# Self-healing: retry, breaker, fallback chain
# ----------------------------------------------------------------------
class TestRetry:
    def test_succeeds_after_transient_failures(self):
        sleeps = []
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise SolverError("transient")
            return "ok"

        result = retry_with_backoff(
            flaky,
            policy=RetryPolicy(attempts=4, base_delay_s=0.01),
            retry_on=(SolverError,),
            sleep=sleeps.append,
        )
        assert result == "ok"
        assert calls["n"] == 3
        assert sleeps == [0.01, 0.02]  # exponential

    def test_exhausted_raises_last_error(self):
        def always(): raise SolverError("nope")

        with pytest.raises(SolverError, match="nope"):
            retry_with_backoff(
                always,
                policy=RetryPolicy(attempts=2, base_delay_s=0),
                sleep=lambda s: None,
            )

    def test_non_retryable_propagates_immediately(self):
        calls = {"n": 0}

        def typed():
            calls["n"] += 1
            raise KeyError("not transient")

        with pytest.raises(KeyError):
            retry_with_backoff(typed, retry_on=(SolverError,), sleep=lambda s: None)
        assert calls["n"] == 1

    def test_delay_capped(self):
        policy = RetryPolicy(attempts=5, base_delay_s=1.0, max_delay_s=2.0)
        assert list(policy.delays()) == [1.0, 2.0, 2.0, 2.0]

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)


class TestCircuitBreaker:
    def _failing(self):
        raise SolverError("boom")

    def test_opens_after_threshold(self):
        clock = {"t": 0.0}
        breaker = CircuitBreaker("x", failure_threshold=2, clock=lambda: clock["t"])
        for _ in range(2):
            with pytest.raises(SolverError):
                breaker.call(self._failing)
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError):
            breaker.call(lambda: "never runs")

    def test_half_open_probe_closes_on_success(self):
        clock = {"t": 0.0}
        breaker = CircuitBreaker(
            "x", failure_threshold=1, reset_after_s=10.0, clock=lambda: clock["t"]
        )
        with pytest.raises(SolverError):
            breaker.call(self._failing)
        clock["t"] = 11.0
        assert breaker.state == "half-open"
        assert breaker.call(lambda: 42) == 42
        assert breaker.state == "closed"

    def test_half_open_failure_reopens(self):
        clock = {"t": 0.0}
        breaker = CircuitBreaker(
            "x", failure_threshold=3, reset_after_s=5.0, clock=lambda: clock["t"]
        )
        for _ in range(3):
            with pytest.raises(SolverError):
                breaker.call(self._failing)
        clock["t"] = 6.0
        with pytest.raises(SolverError):
            breaker.call(self._failing)  # half-open probe fails
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError):
            breaker.call(lambda: 1)

    def test_metrics(self):
        inst = obs.enable(obs.Instrumentation())
        try:
            breaker = CircuitBreaker("m", failure_threshold=1, clock=lambda: 0.0)
            with pytest.raises(SolverError):
                breaker.call(self._failing)
            with pytest.raises(CircuitOpenError):
                breaker.call(lambda: 1)
        finally:
            obs.disable()
        assert inst.metrics.counter("circuit.opened").value == 1
        assert inst.metrics.counter("circuit.rejected").value == 1


class TestFallbackChain:
    def test_healthy_chain_uses_lprr(self, problem):
        result = plan_with_fallbacks(problem, config=PlanConfig())
        assert result.planner == "resilient"
        assert result.diagnostics["delegate"] == "lprr"
        chain = result.diagnostics["fallback_chain"]
        assert chain[0] == {"step": "lprr:auto", "outcome": "ok", "detail": ""}
        assert all(s["outcome"] == "skipped" for s in chain[1:])
        assert result.diagnostics["degraded"] is False

    def test_scipy_failure_falls_back_to_first_order(self, problem, monkeypatch):
        import repro.lpsolve.scipy_backend as scipy_backend

        def broken(*args, **kwargs):
            raise SolverError("forced scipy failure")

        monkeypatch.setattr(scipy_backend, "solve_with_scipy", broken)
        result = plan_with_fallbacks(problem, config=PlanConfig())
        chain = result.diagnostics["fallback_chain"]
        assert chain[0]["outcome"] == "failed"
        assert "forced scipy failure" in chain[0]["detail"]
        assert chain[1] == {"step": "lprr:fo", "outcome": "ok", "detail": ""}
        assert result.diagnostics["delegate"] == "lprr:fo"
        assert result.diagnostics["degraded"] is False
        assert result.placement.is_feasible()

    def test_scipy_and_fo_failure_falls_back_to_simplex(
        self, problem, monkeypatch
    ):
        import repro.lpsolve.firstorder as firstorder
        import repro.lpsolve.scipy_backend as scipy_backend

        monkeypatch.setattr(
            scipy_backend,
            "solve_with_scipy",
            lambda *a, **k: (_ for _ in ()).throw(SolverError("scipy down")),
        )
        monkeypatch.setattr(
            firstorder,
            "solve_first_order",
            lambda *a, **k: (_ for _ in ()).throw(SolverError("fo down")),
        )
        result = plan_with_fallbacks(problem, config=PlanConfig())
        chain = result.diagnostics["fallback_chain"]
        assert chain[0]["outcome"] == "failed"
        assert chain[1]["step"] == "lprr:fo"
        assert chain[1]["outcome"] == "failed"
        assert chain[2] == {"step": "lprr:simplex", "outcome": "ok", "detail": ""}
        assert result.diagnostics["delegate"] == "lprr"
        assert result.placement.is_feasible()

    def test_registered_as_resilient_planner(self, problem, monkeypatch):
        import repro.lpsolve.scipy_backend as scipy_backend

        monkeypatch.setattr(
            scipy_backend,
            "solve_with_scipy",
            lambda *a, **k: (_ for _ in ()).throw(SolverError("down")),
        )
        result = plan(problem, "resilient", PlanConfig())
        assert result.planner == "resilient"
        assert [s["step"] for s in result.diagnostics["fallback_chain"]] == [
            "lprr:auto",
            "lprr:fo",
            "lprr:simplex",
            "stream:greedy",
            "greedy",
            "hash",
        ]

    def test_all_lp_failure_degrades_to_greedy(self, problem, monkeypatch):
        from repro.core import lprr as lprr_mod

        class Broken:
            def __init__(self, *a, **k): pass
            def plan(self, problem): raise SolverError("no LP anywhere")

        monkeypatch.setattr(lprr_mod, "LPRRPlanner", Broken)
        result = plan_with_fallbacks(problem, config=PlanConfig())
        assert result.diagnostics["delegate"] == "stream:greedy"
        assert result.diagnostics["degraded"] is True
        chain = {s["step"]: s["outcome"] for s in result.diagnostics["fallback_chain"]}
        assert chain["lprr:auto"] == "failed"
        assert chain["lprr:fo"] == "failed"
        assert chain["lprr:simplex"] == "failed"
        assert chain["stream:greedy"] == "ok"
        assert chain["greedy"] == "skipped"

    def test_open_breaker_skips_backend(self, problem):
        breaker = backend_breaker("auto")
        for _ in range(breaker.failure_threshold):
            breaker.record_failure()
        result = plan_with_fallbacks(problem, config=PlanConfig())
        chain = result.diagnostics["fallback_chain"]
        assert chain[0] == {
            "step": "lprr:auto",
            "outcome": "skipped",
            "detail": "circuit open",
        }
        assert result.diagnostics["delegate"] == "lprr:fo"  # fo carried it

    def test_large_problem_skips_simplex(self, monkeypatch):
        rng = np.random.default_rng(0)
        sizes = {f"o{i}": 1.0 for i in range(80)}
        names = sorted(sizes)
        corr = {
            (names[int(a)], names[int(b)]): 1.0
            for a, b in (
                sorted(rng.choice(80, size=2, replace=False)) for _ in range(400)
            )
        }
        # (objects + pairs) * nodes far exceeds the simplex-fallback cap.
        big = PlacementProblem.build(sizes, 24, corr)

        import repro.lpsolve.scipy_backend as scipy_backend

        monkeypatch.setattr(
            scipy_backend,
            "solve_with_scipy",
            lambda *a, **k: (_ for _ in ()).throw(SolverError("down")),
        )
        result = plan_with_fallbacks(big, config=PlanConfig())
        chain = {s["step"]: s for s in result.diagnostics["fallback_chain"]}
        assert chain["lprr:simplex"]["outcome"] == "skipped"
        assert "too large" in chain["lprr:simplex"]["detail"]
        # The first-order backend has no size ceiling, so it carries
        # the plan where simplex cannot.
        assert result.diagnostics["delegate"] == "lprr:fo"

    def test_lp_limits_surface_as_solver_error(self, problem):
        from repro.core.lp import solve_placement_lp

        with pytest.raises(SolverError, match="iteration limit"):
            solve_placement_lp(problem, backend="simplex", iteration_limit=1)


# ----------------------------------------------------------------------
# Incremental repair
# ----------------------------------------------------------------------
class TestRepair:
    def test_no_failures_is_a_noop(self, placement):
        outcome = replace_lost_objects(placement, [])
        assert outcome.plan.num_moves == 0
        assert outcome.placement is placement

    def test_lost_objects_move_to_survivors(self, placement):
        trace = [("a", "b"), ("c", "d"), ("a", "c")]
        outcome = replace_lost_objects(placement, ["n0"], operations=trace)
        assert set(outcome.lost_objects) == {"a", "b"}
        assert outcome.plan.num_moves == 2
        for move in outcome.plan.migrations:
            assert move.source == "n0"
            assert move.destination in {"n1", "n2"}
        # Nothing remains on the failed node.
        assert all(
            node != "n0" for node in outcome.placement.to_mapping().values()
        )
        assert outcome.availability_before < 1.0
        assert outcome.availability_after == 1.0
        assert outcome.restored > 0

    def test_correlated_pair_reunited(self, problem):
        # a on n0 (fails), b on n1: repair should put a next to b.
        placement = Placement(problem, np.array([0, 1, 2, 2]))
        outcome = replace_lost_objects(placement, ["n0"])
        mapping = outcome.placement.to_mapping()
        assert mapping["a"] == mapping["b"] == "n1"

    def test_capacity_respected_when_possible(self):
        problem = PlacementProblem.build(
            {"x": 4.0, "y": 4.0, "z": 1.0},
            {"n0": 9.0, "n1": 4.5, "n2": 9.0},
            {("x", "y"): 1.0},
        )
        placement = Placement(problem, np.array([0, 1, 2]))
        outcome = replace_lost_objects(placement, ["n0"], capacity_tolerance=0.0)
        # x (4.0) cannot join y on n1 (4.0/4.5 used): goes to n2 instead.
        assert outcome.placement.to_mapping()["x"] == "n2"

    def test_all_nodes_failed_raises(self, placement):
        with pytest.raises(PlacementError, match="every node failed"):
            replace_lost_objects(placement, ["n0", "n1", "n2"])

    def test_unknown_node_rejected(self, placement):
        with pytest.raises(Exception):
            replace_lost_objects(placement, ["ghost"])


# ----------------------------------------------------------------------
# Degraded cluster execution
# ----------------------------------------------------------------------
class TestClusterFailover:
    def test_unserved_operations_flagged(self, placement):
        cluster = Cluster(placement)
        cluster.fail("n0")
        result = cluster.execute_intersection(["a", "c"])
        assert not result.served
        assert result.bytes_transferred == 0
        ok = cluster.execute_intersection(["c", "d"])
        assert ok.served

    def test_recover_restores_service(self, placement):
        cluster = Cluster(placement)
        cluster.fail("n0")
        cluster.recover("n0")
        assert cluster.execute_intersection(["a", "c"]).served
        assert cluster.unreachable_objects() == []

    def test_unreachable_objects_listed(self, placement):
        cluster = Cluster(placement)
        cluster.fail("n0")
        assert cluster.unreachable_objects() == ["a", "b"]

    def test_migrate_onto_failed_node_rejected(self, placement):
        cluster = Cluster(placement)
        cluster.fail("n1")
        with pytest.raises(PlacementError, match="failed node"):
            cluster.migrate("a", "n1")

    def test_migrate_out_of_failed_node_allowed(self, placement):
        cluster = Cluster(placement)
        cluster.fail("n0")
        moved = cluster.migrate("a", "n1")
        assert moved > 0
        assert cluster.is_available("a")

    def test_unknown_node_fail_rejected(self, placement):
        with pytest.raises(PlacementError):
            Cluster(placement).fail("ghost")


# ----------------------------------------------------------------------
# End-to-end chaos
# ----------------------------------------------------------------------
class TestChaos:
    def _scenario(self, seed=5):
        problem, operations = synthetic_scenario(
            num_objects=20, num_nodes=4, num_operations=30, seed=seed
        )
        schedule = FaultSchedule.random(
            problem.num_nodes, len(operations), seed=seed, events=5
        )
        return problem, operations, schedule

    def test_same_seed_byte_identical_report(self):
        problem, operations, schedule = self._scenario()
        config = ChaosConfig(plan_config=PlanConfig(scope=15))
        a = run_chaos(problem, operations, schedule, config, seed=5)
        b = run_chaos(problem, operations, schedule, config, seed=5)
        assert a.to_json() == b.to_json()

    def test_replication_dominates_single_copy(self):
        # Repair off: the single placement stays static, and every
        # replicated copy set is a superset of the single copy, so
        # dominance must hold epoch by epoch.
        problem, operations, schedule = self._scenario()
        report = run_chaos(
            problem, operations, schedule, ChaosConfig(repair=False), seed=5
        )
        assert report.availability_replicated >= report.availability_single
        for epoch in report.epochs:
            assert (
                epoch.replicated.operation_availability
                >= epoch.single.operation_availability
            )

    def test_repair_restores_availability(self):
        problem, operations, schedule = self._scenario()
        report = run_chaos(problem, operations, schedule, seed=5)
        repairs = [e.repair for e in report.epochs if e.repair is not None]
        assert repairs  # the seeded schedule does crash something
        for repair in repairs:
            assert repair["availability_after"] >= repair["availability_before"]
        assert report.repair_moves == sum(r["moves"] for r in repairs)

    def test_no_repair_mode(self):
        problem, operations, schedule = self._scenario()
        report = run_chaos(
            problem, operations, schedule, ChaosConfig(repair=False), seed=5
        )
        assert all(e.repair is None for e in report.epochs)
        assert report.repair_moves == 0

    def test_epochs_tile_the_trace(self):
        problem, operations, schedule = self._scenario()
        report = run_chaos(problem, operations, schedule, seed=5)
        spans = [(e.start, e.end) for e in report.epochs]
        assert spans[0][0] == 0
        assert spans[-1][1] == len(operations)
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert end == start
        assert sum(e.single.operations for e in report.epochs) == len(operations)

    def test_planning_diagnostics_recorded(self):
        problem, operations, schedule = self._scenario()
        report = run_chaos(problem, operations, schedule, seed=5)
        assert report.planner == "resilient"
        assert report.planning["fallback_chain"][0]["step"] == "lprr:auto"

    def test_schedule_node_mismatch_rejected(self):
        problem, operations, _ = self._scenario()
        schedule = FaultSchedule(problem.num_nodes + 1, ())
        with pytest.raises(ValueError, match="nodes"):
            run_chaos(problem, operations, schedule)

    def test_empty_trace_rejected(self):
        problem, _, _ = self._scenario()
        with pytest.raises(ValueError, match="nonempty"):
            run_chaos(problem, [], FaultSchedule(problem.num_nodes, ()))

    def test_synthetic_scenario_deterministic(self):
        a = synthetic_scenario(seed=9)
        b = synthetic_scenario(seed=9)
        assert a[1] == b[1]
        assert list(a[0].object_ids) == list(b[0].object_ids)
        assert np.array_equal(a[0].sizes, b[0].sizes)


class TestChaosCli:
    def test_cli_reports_are_byte_identical(self, tmp_path, capsys):
        from repro.cli import main

        args = [
            "chaos",
            "--objects", "16",
            "--nodes", "4",
            "--operations", "24",
            "--events", "4",
            "--seed", "2",
        ]
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main([*args, "--out", str(a)]) == 0
        assert main([*args, "--out", str(b)]) == 0
        assert a.read_bytes() == b.read_bytes()
        out = capsys.readouterr().out
        assert "availability" in out

    def test_cli_seed_changes_report(self, tmp_path):
        from repro.cli import main

        a, b = tmp_path / "a.json", tmp_path / "b.json"
        base = ["chaos", "--objects", "16", "--nodes", "4", "--operations", "24"]
        main([*base, "--seed", "1", "--out", str(a)])
        main([*base, "--seed", "2", "--out", str(b)])
        assert a.read_bytes() != b.read_bytes()

class TestDomainFaults:
    def _topology(self):
        from repro.cluster import synthetic_topology

        return synthetic_topology(8, zones=2, racks_per_zone=2)

    def test_crash_domain_takes_whole_domain_down(self):
        from repro.resilience import CRASH_DOMAIN, HEAL_DOMAIN

        topo = self._topology()
        nodes = topo.nodes_of_domain("rack:1")
        state = FaultState(topo.num_nodes)
        state.apply(FaultEvent(1, CRASH_DOMAIN, nodes, domain="rack:1"))
        view = state.view()
        assert view.down == frozenset(nodes)
        assert view.down_domains == frozenset({"rack:1"})
        state.apply(FaultEvent(2, HEAL_DOMAIN, nodes, domain="rack:1"))
        view = state.view()
        assert not view.down
        assert not view.down_domains

    def test_domain_event_requires_domain_label(self):
        from repro.resilience import CRASH_DOMAIN

        with pytest.raises(ValueError, match="domain"):
            FaultEvent(1, CRASH_DOMAIN, (0, 1))

    def test_random_domains_deterministic_and_bounded(self):
        topo = self._topology()
        a = FaultSchedule.random_domains(topo, 60, seed=11, events=8)
        b = FaultSchedule.random_domains(topo, 60, seed=11, events=8)
        assert a.to_dict() == b.to_dict()
        max_down = topo.num_nodes // 2
        for epoch in a.epochs(60):
            assert len(epoch.view.down) <= max_down

    def test_random_domains_round_trips_through_json(self):
        topo = self._topology()
        schedule = FaultSchedule.random_domains(topo, 60, seed=4, events=6)
        clone = FaultSchedule.from_dict(schedule.to_dict())
        assert clone.to_dict() == schedule.to_dict()
        assert any(e.domain for e in schedule.events)


class TestReReplicate:
    def _zoned(self, seed=3):
        from repro.cluster import synthetic_topology
        from repro.core.replication import spread_replicated_placement

        problem, operations = synthetic_scenario(
            num_objects=20, num_nodes=8, num_operations=30, seed=seed,
            capacity_factor=4.0,
        )
        topo = synthetic_topology(8, zones=2, racks_per_zone=2)
        placement = spread_replicated_placement(problem, topo, replicas=2)
        return problem, operations, topo, placement

    def test_restores_full_replication_after_rack_loss(self):
        from repro.core.replication import spread_violations
        from repro.resilience import re_replicate

        problem, operations, topo, placement = self._zoned()
        down = topo.nodes_of_domain("rack:0")
        view = ClusterView(
            num_nodes=8, down=frozenset(down),
            down_domains=frozenset({"rack:0"}),
        )
        outcome = re_replicate(placement, view, operations=operations)
        assert outcome.moves > 0
        assert outcome.unrepaired_copies == 0
        assert not outcome.lost_objects
        assert not np.isin(outcome.placement.assignment, down).any()
        # The repaired layout still satisfies its spread constraint.
        ids = topo.domain_ids(outcome.placement.spread)
        assert spread_violations(outcome.placement.assignment, ids).size == 0

    def test_availability_never_drops(self):
        from repro.resilience import re_replicate

        problem, operations, topo, placement = self._zoned()
        view = ClusterView(
            num_nodes=8,
            down=frozenset(topo.nodes_of_domain("zone:0")),
            down_domains=frozenset({"zone:0"}),
        )
        outcome = re_replicate(placement, view, operations=operations)
        assert outcome.availability_after >= outcome.availability_before

    def test_noop_when_nothing_down(self):
        from repro.resilience import re_replicate

        _, operations, _, placement = self._zoned()
        outcome = re_replicate(placement, ClusterView(num_nodes=8))
        assert outcome.moves == 0
        assert np.array_equal(outcome.placement.assignment, placement.assignment)


class TestDomainChaos:
    def _scenario(self, seed=3):
        from repro.cluster import synthetic_topology

        problem, operations = synthetic_scenario(
            num_objects=24, num_nodes=8, num_operations=40, seed=seed,
            capacity_factor=4.0,
        )
        topo = synthetic_topology(8, zones=2, racks_per_zone=2)
        schedule = FaultSchedule.random_domains(
            topo, len(operations), seed=seed, events=6
        )
        return problem, operations, topo, schedule

    def test_same_seed_byte_identical_report(self):
        problem, operations, topo, schedule = self._scenario()
        config = ChaosConfig(replicas=2, topology=topo)
        a = run_chaos(problem, operations, schedule, config, seed=3)
        b = run_chaos(problem, operations, schedule, config, seed=3)
        assert a.to_json() == b.to_json()

    def test_report_carries_domain_fields(self):
        problem, operations, topo, schedule = self._scenario()
        report = run_chaos(
            problem, operations, schedule,
            ChaosConfig(replicas=2, topology=topo), seed=3,
        )
        assert report.baseline == "rep:hash"
        assert report.topology == topo.to_dict()
        assert report.spread in ("zone", "rack", "node")
        assert isinstance(report.domain_impact, dict)
        downs = [e for e in report.epochs if e.down_domains]
        assert downs  # the seeded schedule crashes at least one domain
        for label in {d for e in downs for d in e.down_domains}:
            assert label in report.domain_impact

    def test_optimized_no_costlier_than_hash_baseline(self):
        problem, operations, topo, schedule = self._scenario()
        report = run_chaos(
            problem, operations, schedule,
            ChaosConfig(replicas=2, topology=topo), seed=3,
        )
        assert report.healthy_cost_replicated <= report.healthy_cost_single + 1e-9

    def test_data_loss_flag_set_when_all_copies_die(self):
        from repro.cluster import Topology

        # Two nodes, two copies, both nodes down: certain data loss.
        problem, operations = synthetic_scenario(
            num_objects=8, num_nodes=2, num_operations=10, seed=0,
            capacity_factor=4.0,
        )
        topo = Topology.flat(2)
        schedule = FaultSchedule(
            2, (FaultEvent(2, "crash", (0,)), FaultEvent(4, "crash", (1,)))
        )
        report = run_chaos(
            problem, operations, schedule,
            ChaosConfig(replicas=2, topology=topo, repair=False), seed=0,
        )
        assert report.data_loss
        assert "DATA LOSS" in report.render()


class TestDomainChaosCli:
    ARGS = [
        "chaos",
        "--replicas", "2",
        "--topology", "zones:2,racks:2",
        "--objects", "24",
        "--nodes", "8",
        "--operations", "40",
        "--events", "6",
    ]

    def test_cli_domain_reports_are_byte_identical(self, tmp_path, capsys):
        from repro.cli import main

        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main([*self.ARGS, "--seed", "3", "--out", str(a)]) == 0
        assert main([*self.ARGS, "--seed", "3", "--out", str(b)]) == 0
        assert a.read_bytes() == b.read_bytes()
        doc = json.loads(a.read_text())
        assert doc["baseline"] == "rep:hash"
        assert doc["topology"]["zones"]
        out = capsys.readouterr().out
        assert "availability" in out

    def test_cli_exits_nonzero_on_data_loss(self, tmp_path, capsys):
        from repro.cli import main

        # Sweep seeds until the schedule produces total loss of some
        # object; the exit code must flip to 1 in exactly those runs.
        saw_loss = False
        for seed in range(12):
            out = tmp_path / f"r{seed}.json"
            code = main([*self.ARGS, "--seed", str(seed), "--out", str(out)])
            doc = json.loads(out.read_text())
            assert code == (1 if doc["data_loss"] else 0)
            saw_loss = saw_loss or doc["data_loss"]
            capsys.readouterr()
        assert saw_loss  # the sweep exercises the failure path


class TestPGDegradedParity:
    def test_pg_placement_serves_like_exact_under_crash(self):
        # Satellite: a crashed node under a PGMap-derived placement must
        # show the same unserved accounting as the identical exact
        # placement — degraded serving sees assignments, not how they
        # were produced.
        from repro.core.strategies import PlanScope

        problem, operations = synthetic_scenario(
            num_objects=40, num_nodes=5, num_operations=40, seed=2
        )
        config = PlanConfig(
            scope=PlanScope.pg(groups=8, important=8), seed=2, use_cache=False
        )
        result = plan(problem, "lprr:pg", config)
        pg_placement = result.placement
        exact_clone = Placement(problem, pg_placement.assignment.copy())

        view = ClusterView(num_nodes=5, down=frozenset({int(pg_placement.assignment[0])}))
        via_pg = mode_stats(pg_placement, view, operations)
        via_exact = mode_stats(exact_clone, view, operations)
        assert via_pg == via_exact
        assert via_pg.lost_objects > 0  # the crash actually bites

    def test_pg_scope_chaos_run_accounts_unserved(self):
        from repro.core.strategies import PlanScope

        problem, operations = synthetic_scenario(
            num_objects=40, num_nodes=5, num_operations=40, seed=2
        )
        schedule = FaultSchedule.random(5, len(operations), seed=2, events=5)
        config = ChaosConfig(
            plan_config=PlanConfig(
                scope=PlanScope.pg(groups=8, important=8), seed=2
            )
        )
        report = run_chaos(problem, operations, schedule, config, seed=2)
        assert report.planning["fallback_chain"][0]["step"] == "lprr:pg:auto"
        assert 0.0 <= report.availability_single <= 1.0
        total_unserved = sum(
            e.single.operations - e.single.servable_operations
            for e in report.epochs
        )
        downs = [e for e in report.epochs if e.down]
        if downs:
            assert total_unserved >= 0
