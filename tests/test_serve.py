"""Tests for the serving layer (repro.serve): virtual time, admission,
snapshots/hot-swap, the batching router, and the JSON-lines server."""

import asyncio
import json
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.problem import PlacementProblem
from repro.core.replication import ReplicatedPlacement
from repro.search.documents import Corpus, Document
from repro.search.engine import EngineStats, QueryExecution
from repro.search.index import InvertedIndex
from repro.search.query import Query
from repro.serve import (
    AdmissionError,
    PlanHandle,
    PlanSnapshot,
    QueryRouter,
    ServeConfig,
    TokenBucket,
    VirtualTimeLoop,
    run_virtual,
)
from repro.serve.admission import DRAINING, QUEUE_FULL, THROTTLED
from repro.serve.server import handle_connection


# ----------------------------------------------------------------------
# Shared scenario: a tiny index and a snapshot factory
# ----------------------------------------------------------------------

WORDS = ("alpha", "beta", "gamma", "delta")


@pytest.fixture
def index():
    docs = []
    for i in range(8):
        words = {"alpha"}
        if i % 2 == 0:
            words.add("beta")
        if i % 4 == 0:
            words.add("gamma")
        if i == 0:
            words.add("delta")
        docs.append(Document(f"d{i}", frozenset(words)))
    return InvertedIndex.from_corpus(Corpus(docs))


def problem_for(index, nodes=3):
    return PlacementProblem.build(
        {w: float(index.size_bytes(w)) for w in index.vocabulary}, nodes, {}
    )


def snapshot(index, version, node=0, planner="test"):
    """All words on one node — which node distinguishes versions."""
    problem = problem_for(index)
    mapping = {w: node for w in problem.object_ids}
    return PlanSnapshot.from_mapping(
        index, problem, mapping, version, planner=planner
    )


# ----------------------------------------------------------------------
# Virtual time
# ----------------------------------------------------------------------

class TestVirtualTime:
    def test_timers_fire_at_exact_virtual_instants(self):
        fired = []

        async def main():
            loop = asyncio.get_running_loop()

            async def at(delay, tag):
                await asyncio.sleep(delay)
                fired.append((tag, loop.time()))

            await asyncio.gather(at(0.5, "c"), at(0.1, "a"), at(0.3, "b"))
            return loop.time()

        started = time.perf_counter()
        end = run_virtual(main())
        wall = time.perf_counter() - started
        assert fired == [("a", 0.1), ("b", 0.3), ("c", 0.5)]
        assert end == 0.5
        assert wall < 0.5  # virtual: no real sleeping happened

    def test_clock_starts_at_zero_and_is_monotonic(self):
        samples = []

        async def main():
            loop = asyncio.get_running_loop()
            samples.append(loop.time())
            for _ in range(3):
                await asyncio.sleep(0.25)
                samples.append(loop.time())

        run_virtual(main())
        assert samples[0] == 0.0
        assert samples == sorted(samples)

    def test_call_at_and_sleep_interleave_deterministically(self):
        order = []

        async def main():
            loop = asyncio.get_running_loop()
            loop.call_at(0.2, order.append, "timer")
            await asyncio.sleep(0.1)
            order.append("sleep1")
            await asyncio.sleep(0.2)
            order.append("sleep2")

        run_virtual(main())
        assert order == ["sleep1", "timer", "sleep2"]


# ----------------------------------------------------------------------
# Admission
# ----------------------------------------------------------------------

class TestTokenBucket:
    def test_starts_full_and_drains(self):
        bucket = TokenBucket(rate=10.0, burst=3.0)
        assert [bucket.try_acquire(0.0) for _ in range(4)] == [
            True, True, True, False,
        ]

    def test_refills_at_rate_and_caps_at_burst(self):
        bucket = TokenBucket(rate=10.0, burst=3.0)
        for _ in range(3):
            bucket.try_acquire(0.0)
        assert not bucket.try_acquire(0.05)  # only 0.5 tokens back
        assert bucket.try_acquire(0.1)  # 1.0 token at t=0.1
        # A long idle period refills to burst, not beyond.
        bucket2 = TokenBucket(rate=10.0, burst=3.0)
        bucket2.try_acquire(100.0)
        assert bucket2.tokens == pytest.approx(2.0)

    def test_retry_after_is_deficit_over_rate(self):
        bucket = TokenBucket(rate=4.0, burst=1.0)
        assert bucket.try_acquire(0.0)
        assert bucket.retry_after(0.0) == pytest.approx(0.25)
        assert bucket.retry_after(0.25) == pytest.approx(0.0)

    def test_rejects_nonpositive_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=-1.0)


class TestAdmissionError:
    def test_carries_reason_and_retry_hint(self):
        exc = AdmissionError(THROTTLED, retry_after_s=0.125)
        assert exc.reason == THROTTLED
        assert exc.retry_after_s == 0.125

    def test_unknown_reason_rejected(self):
        with pytest.raises(ValueError):
            AdmissionError("busy")


# ----------------------------------------------------------------------
# Snapshots and the handle
# ----------------------------------------------------------------------

class TestPlanSnapshot:
    def test_assignment_is_frozen(self, index):
        snap = snapshot(index, version=1)
        assert not snap.assignment.flags.writeable
        with pytest.raises(ValueError):
            snap.assignment[0] = 99

    def test_from_mapping_routes_queries(self, index):
        snap = snapshot(index, version=1, node=2)
        execution = snap.engine.execute(Query(("alpha", "beta")))
        assert execution.served
        assert execution.bytes_transferred == 0  # co-located on node 2
        assert snap.version == 1
        assert snap.planner == "test"


class TestPlanHandle:
    def test_swap_returns_previous_and_counts(self, index):
        v1, v2 = snapshot(index, 1), snapshot(index, 2)
        handle = PlanHandle(v1)
        assert handle.swap(v2) is v1
        assert handle.current is v2
        assert handle.swaps == 1

    def test_swap_requires_increasing_version(self, index):
        handle = PlanHandle(snapshot(index, 2))
        with pytest.raises(ValueError, match="must exceed"):
            handle.swap(snapshot(index, 2))

    def test_acquire_release_refcounts(self, index):
        v1 = snapshot(index, 1)
        handle = PlanHandle(v1)
        a = handle.acquire()
        b = handle.acquire()
        assert a is v1 and b is v1
        assert handle.active_versions() == {1: 2}
        handle.swap(snapshot(index, 2))
        # The retired version stays pinned until its batches finish.
        assert handle.active_versions() == {1: 2}
        handle.release(a)
        handle.release(b)
        assert handle.active_versions() == {}

    def test_release_without_acquire_raises(self, index):
        handle = PlanHandle(snapshot(index, 1))
        with pytest.raises(ValueError, match="release without acquire"):
            handle.release(handle.current)


# ----------------------------------------------------------------------
# The router
# ----------------------------------------------------------------------

def make_router(index, **overrides):
    defaults = dict(
        max_batch=4,
        max_delay_s=0.01,
        rate=1000.0,
        burst=100.0,
        max_queue=64,
    )
    defaults.update(overrides)
    return QueryRouter(PlanHandle(snapshot(index, 1)), ServeConfig(**defaults))


class TestRouterBatching:
    def test_partial_batch_waits_for_max_delay(self, index):
        async def main():
            router = make_router(index)
            results = await asyncio.gather(
                router.submit(Query(("alpha",))),
                router.submit(Query(("beta",))),
            )
            return router, results

        router, results = run_virtual(main())
        assert router.batches == 1
        assert {r.batch_seq for r in results} == {1}
        # Dispatched at max_delay, then one service interval.
        service = (
            router.config.dispatch_overhead_s
            + router.config.per_query_s * 2
        )
        for r in results:
            assert r.completion_t == pytest.approx(0.01 + service)

    def test_full_batch_dispatches_immediately(self, index):
        async def main():
            router = make_router(index)
            results = await asyncio.gather(
                *(router.submit(Query(("alpha",))) for _ in range(4))
            )
            return router, results

        router, results = run_virtual(main())
        assert router.batches == 1
        # No delay: only the service time (one distinct query).
        service = (
            router.config.dispatch_overhead_s + router.config.per_query_s
        )
        assert results[0].completion_t == pytest.approx(service)

    def test_repeats_in_batch_share_one_execution(self, index):
        async def main():
            router = make_router(index)
            await asyncio.gather(
                *(router.submit(Query(("alpha", "beta"))) for _ in range(4))
            )
            return router

        router = run_virtual(main())
        assert router.stats.queries == 4  # every caller is accounted
        assert router.completed == 4
        assert router.batches == 1

    def test_batches_queue_fifo_behind_one_executor(self, index):
        async def main():
            router = make_router(index, max_batch=1, max_delay_s=0.0)
            results = await asyncio.gather(
                *(router.submit(Query(("alpha",))) for _ in range(3))
            )
            return router, results

        router, results = run_virtual(main())
        assert router.batches == 3
        completions = sorted(r.completion_t for r in results)
        service = (
            router.config.dispatch_overhead_s + router.config.per_query_s
        )
        for i, t in enumerate(completions, start=1):
            assert t == pytest.approx(i * service)


class TestRouterAdmission:
    def test_throttled_when_bucket_empty(self, index):
        async def main():
            router = make_router(index, rate=10.0, burst=1.0)
            first = asyncio.ensure_future(router.submit(Query(("alpha",))))
            await asyncio.sleep(0.0)  # let the first submit take the token
            with pytest.raises(AdmissionError) as exc:
                await router.submit(Query(("beta",)))
            await first
            return router, exc.value

        router, exc = run_virtual(main())
        assert exc.reason == THROTTLED
        assert exc.retry_after_s == pytest.approx(0.1)
        assert router.shed.throttled == 1
        assert router.stats.rejected_queries == 1

    def test_queue_full_when_backlog_capped(self, index):
        async def main():
            router = make_router(index, max_queue=2)
            admitted = [
                asyncio.ensure_future(router.submit(Query(("alpha",))))
                for _ in range(2)
            ]
            await asyncio.sleep(0.0)  # both admitted into the backlog
            with pytest.raises(AdmissionError) as exc:
                await router.submit(Query(("beta",)))
            await asyncio.gather(*admitted)
            return router, exc.value

        router, exc = run_virtual(main())
        assert exc.reason == QUEUE_FULL
        assert router.shed.queue_full == 1

    def test_draining_rejects_new_work(self, index):
        async def main():
            router = make_router(index)
            first = asyncio.ensure_future(router.submit(Query(("alpha",))))
            await asyncio.sleep(0.001)
            drain = asyncio.ensure_future(router.drain())
            await asyncio.sleep(0.0)
            with pytest.raises(AdmissionError) as exc:
                await router.submit(Query(("beta",)))
            await drain
            await first
            return router, exc.value

        router, exc = run_virtual(main())
        assert exc.reason == DRAINING
        assert router.backlog == 0
        assert router.completed == 1

    def test_rejections_do_not_touch_availability(self, index):
        """Regression: shed queries must not double-count into
        EngineStats — availability stays an executed-query measure."""
        async def main():
            router = make_router(index, rate=10.0, burst=1.0)
            first = asyncio.ensure_future(router.submit(Query(("alpha",))))
            await asyncio.sleep(0.0)  # let the first submit take the token
            for _ in range(3):
                with pytest.raises(AdmissionError):
                    await router.submit(Query(("beta",)))
            await first
            return router

        router = run_virtual(main())
        assert router.stats.queries == 1
        assert router.stats.unserved_queries == 0
        assert router.stats.rejected_queries == 3
        assert router.stats.availability == 1.0
        assert router.stats.service_level == pytest.approx(0.25)


class TestEngineStatsRejections:
    def test_record_rejected_separate_from_executed(self):
        stats = EngineStats()
        stats.record(
            QueryExecution(
                query=Query(("a",)),
                result_count=1,
                bytes_transferred=0,
                nodes_contacted=1,
                hops=0,
                served=True,
            ),
            [],
        )
        stats.record_rejected(4)
        assert stats.queries == 1
        assert stats.rejected_queries == 4
        assert stats.availability == 1.0  # unchanged by rejections
        assert stats.service_level == pytest.approx(0.2)

    def test_service_level_counts_unserved_and_rejected(self):
        stats = EngineStats()
        stats.record(
            QueryExecution(
                query=Query(("a",)),
                result_count=0,
                bytes_transferred=0,
                nodes_contacted=0,
                hops=0,
                served=False,
            ),
            [],
        )
        stats.record_rejected(1)
        assert stats.availability == 0.0
        assert stats.service_level == 0.0


# ----------------------------------------------------------------------
# Hot swap
# ----------------------------------------------------------------------

class TestHotSwap:
    def test_inflight_batch_keeps_its_snapshot(self, index):
        async def main():
            router = make_router(index, max_batch=2, max_delay_s=0.0)
            inflight = [
                asyncio.ensure_future(router.submit(Query(("alpha",))))
                for _ in range(2)
            ]
            await asyncio.sleep(0.0)  # batch dispatched, still in service
            router.publish(snapshot(index, 2, node=1))
            later = await router.submit(Query(("alpha",)))
            early = await asyncio.gather(*inflight)
            return router, early, later

        router, early, later = run_virtual(main())
        assert {r.version for r in early} == {1}
        assert later.version == 2
        assert router.queries_by_version == {1: 2, 2: 1}
        assert router.dropped_in_flight == 0
        assert router.handle.active_versions() == {}

    @settings(max_examples=25, deadline=None)
    @given(
        arrivals=st.lists(
            st.integers(min_value=0, max_value=40), min_size=1, max_size=30
        ),
        swap_ticks=st.lists(
            st.integers(min_value=1, max_value=40),
            max_size=4,
            unique=True,
        ),
    )
    def test_every_query_answered_from_exactly_one_snapshot(
        self, arrivals, swap_ticks
    ):
        """Interleave swaps with concurrent batched queries arbitrarily:
        each query is answered from exactly one published snapshot, each
        batch from a single version, and nothing is dropped."""
        index = InvertedIndex.from_corpus(
            Corpus([Document("d0", frozenset({"alpha", "beta"}))])
        )
        tick = 0.001

        async def main():
            router = make_router(
                index, max_batch=3, max_delay_s=0.002, rate=1e6, burst=1e6
            )
            versions = [1]

            async def one(at):
                await asyncio.sleep(at * tick)
                return await router.submit(Query(("alpha",)))

            async def swapper(at, version):
                await asyncio.sleep(at * tick)
                router.publish(snapshot(index, version))
                versions.append(version)

            tasks = [asyncio.ensure_future(one(at)) for at in arrivals]
            tasks += [
                asyncio.ensure_future(swapper(at, 2 + i))
                for i, at in enumerate(sorted(swap_ticks))
            ]
            done = await asyncio.gather(*tasks)
            await router.drain()
            results = [r for r in done if r is not None]
            return router, results, versions

        router, results, versions = run_virtual(main())
        assert len(results) == len(arrivals)
        assert router.dropped_in_flight == 0
        # Exactly one version per query, drawn from the published set.
        for routed in results:
            assert routed.version in versions
        # A batch never tears across a swap: one version per batch_seq.
        by_batch = {}
        for routed in results:
            by_batch.setdefault(routed.batch_seq, set()).add(routed.version)
        assert all(len(v) == 1 for v in by_batch.values())
        # Version accounting is conserved and nothing stays pinned.
        assert sum(router.queries_by_version.values()) == len(arrivals)
        assert router.handle.active_versions() == {}
        assert router.handle.swaps == len(versions) - 1


# ----------------------------------------------------------------------
# The JSON-lines server
# ----------------------------------------------------------------------

class TestServer:
    def run_session(self, index, lines):
        """Feed raw request lines through one connection, real loop."""

        async def main():
            router = make_router(index)
            server = await asyncio.start_server(
                lambda r, w: handle_connection(router, r, w),
                "127.0.0.1",
                0,
            )
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            responses = []
            for line in lines:
                writer.write(line)
                await writer.drain()
                responses.append(json.loads(await reader.readline()))
            writer.write(b"\n")  # empty line: polite close
            await writer.drain()
            assert await reader.readline() == b""
            writer.close()
            await writer.wait_closed()
            server.close()
            await server.wait_closed()
            return responses

        return asyncio.run(main())

    def test_query_stats_and_errors(self, index):
        responses = self.run_session(
            index,
            [
                json.dumps({"keywords": ["alpha", "beta"]}).encode() + b"\n",
                json.dumps({"op": "stats"}).encode() + b"\n",
                json.dumps({"keywords": "alpha"}).encode() + b"\n",
                b"not json\n",
            ],
        )
        answer, stats, bad_type, bad_json = responses
        assert answer["ok"] and answer["served"]
        assert answer["version"] == 1
        assert answer["results"] == 4  # d0, d2, d4, d6
        assert stats["ok"] and stats["queries"] == 1
        assert stats["availability"] == 1.0
        assert not bad_type["ok"]
        assert "keywords" in bad_type["error"]
        assert not bad_json["ok"]
        assert bad_json["error"].startswith("bad request")
