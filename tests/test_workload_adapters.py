"""Tests for real-world trace adapters (repro.workloads.adapters)."""

import pytest

from repro.exceptions import TraceFormatError
from repro.search.query import QueryLog
from repro.workloads.adapters import load_aol_query_log, split_log_by_fraction

AOL_SAMPLE = (
    "AnonID\tQuery\tQueryTime\tItemRank\tClickURL\n"
    "1\tcar dealer\t2006-03-01 07:17:12\t1\thttp://cars.example\n"
    "1\tsoftware download\t2006-03-01 07:19:04\t\t\n"
    "2\tThe Matrix\t2006-03-02 11:00:00\t2\thttp://movies.example\n"
    "2\t-\t2006-03-02 11:00:30\t\t\n"
    "3\tfree mp3 music download\t2006-03-03 09:12:00\t\t\n"
)


@pytest.fixture
def aol_file(tmp_path):
    path = tmp_path / "aol.txt"
    path.write_text(AOL_SAMPLE)
    return path


class TestAolLoader:
    def test_parses_queries(self, aol_file):
        log = load_aol_query_log(aol_file)
        assert len(log) == 4  # the "-" row has no tokens
        assert log[0].keywords == ("car", "dealer")
        assert log[2].keywords == ("the", "matrix")

    def test_header_skipped(self, aol_file):
        log = load_aol_query_log(aol_file)
        assert all("anonid" not in q.keywords for q in log)

    def test_max_queries(self, aol_file):
        log = load_aol_query_log(aol_file, max_queries=2)
        assert len(log) == 2

    def test_min_keywords_filters(self, aol_file):
        log = load_aol_query_log(aol_file, min_keywords=2)
        assert all(len(q) >= 2 for q in log)
        assert len(log) == 4

    def test_stopword_removal_optional(self, aol_file):
        kept = load_aol_query_log(aol_file)
        removed = load_aol_query_log(aol_file, remove_stopwords=True)
        assert ("the", "matrix") in [q.keywords for q in kept]
        assert ("matrix",) in [q.keywords for q in removed]

    def test_malformed_row_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("only-one-column\n")
        with pytest.raises(TraceFormatError, match="tab-separated"):
            load_aol_query_log(path, skip_header=False)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(TraceFormatError, match="cannot read"):
            load_aol_query_log(tmp_path / "absent.txt")

    def test_invalid_min_keywords(self, aol_file):
        with pytest.raises(ValueError):
            load_aol_query_log(aol_file, min_keywords=0)

    def test_feeds_correlation_pipeline(self, aol_file):
        from repro.core.correlation import cooccurrence_correlations

        log = load_aol_query_log(aol_file)
        corr = cooccurrence_correlations(log.operations())
        assert ("car", "dealer") in corr


class TestSplit:
    def test_split_fraction(self):
        log = QueryLog([(f"w{i}",) for i in range(10)])
        first, second = split_log_by_fraction(log, 0.3)
        assert len(first) == 3
        assert len(second) == 7
        assert first[0].keywords == ("w0",)
        assert second[0].keywords == ("w3",)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            split_log_by_fraction(QueryLog(), 0.0)
        with pytest.raises(ValueError):
            split_log_by_fraction(QueryLog(), 1.0)
