"""Tests for generic partial optimization (repro.core.partial)."""

import numpy as np
import pytest

from repro.core.greedy import greedy_placement
from repro.core.hashing import hash_node
from repro.core.partial import scoped_placement
from repro.core.placement import Placement
from repro.core.problem import PlacementProblem


@pytest.fixture
def problem():
    # Two heavy clusters plus light never-paired objects.
    objects = {f"h{i}": 2.0 for i in range(4)}
    objects.update({f"l{i}": 1.0 for i in range(6)})
    correlations = {
        ("h0", "h1"): 0.9,
        ("h2", "h3"): 0.8,
        ("l0", "l1"): 0.01,
    }
    return PlacementProblem.build(objects, 3, correlations)


class TestScopedPlacement:
    def test_full_scope_uses_inner_strategy_everywhere(self, problem):
        placement = scoped_placement(problem, None, greedy_placement)
        assert placement.node_of("h0") == placement.node_of("h1")
        assert placement.node_of("h2") == placement.node_of("h3")

    def test_out_of_scope_objects_hash_placed(self, problem):
        placement = scoped_placement(
            problem, 4, greedy_placement, hash_salt="s"
        )
        # The light objects are out of scope -> hash positions.
        for obj in ("l2", "l3", "l4", "l5"):
            expected = hash_node(obj, problem.num_nodes, "s")
            assert placement.assignment[problem.object_index(obj)] == expected

    def test_scope_zero_is_pure_hash(self, problem):
        placement = scoped_placement(problem, 0, greedy_placement)
        for i, obj in enumerate(problem.object_ids):
            assert placement.assignment[i] == hash_node(obj, problem.num_nodes)

    def test_scope_clipped_to_problem_size(self, problem):
        placement = scoped_placement(problem, 10_000, greedy_placement)
        assert placement.assignment.shape == (problem.num_objects,)

    def test_negative_scope_rejected(self, problem):
        with pytest.raises(ValueError):
            scoped_placement(problem, -1, greedy_placement)

    def test_inner_strategy_sees_conservative_capacities(self, problem):
        seen = {}

        def spy(subproblem):
            seen["capacities"] = subproblem.capacities.copy()
            seen["objects"] = subproblem.object_ids
            return Placement(
                subproblem, np.zeros(subproblem.num_objects, dtype=np.int64)
            )

        scoped_placement(problem, 4, spy, capacity_factor=2.0)
        scoped_size = 4 * 2.0  # four heavy objects
        expected = 2.0 * scoped_size / problem.num_nodes
        assert seen["capacities"][0] == pytest.approx(expected)
        assert len(seen["objects"]) == 4

    def test_capacity_factor_none_keeps_problem_capacities(self):
        p = PlacementProblem.build(
            {"a": 1.0, "b": 1.0}, {0: 7.0, 1: 9.0}, {("a", "b"): 0.5}
        )
        seen = {}

        def spy(subproblem):
            seen["capacities"] = subproblem.capacities.copy()
            return Placement(
                subproblem, np.zeros(subproblem.num_objects, dtype=np.int64)
            )

        scoped_placement(p, None, spy, capacity_factor=None)
        assert seen["capacities"].tolist() == [7.0, 9.0]

    def test_merged_assignment_covers_all_objects(self, problem):
        placement = scoped_placement(problem, 4, greedy_placement)
        assert np.all(placement.assignment >= 0)
        assert np.all(placement.assignment < problem.num_nodes)

    def test_matches_lprr_scoping_semantics(self, problem):
        """scoped_placement and LPRRPlanner hash the same out-of-scope
        objects to the same nodes (they share the ranking and hashing)."""
        from repro.core.lprr import LPRRPlanner

        lprr = LPRRPlanner(scope=4, seed=0, hash_salt="x").plan(problem)
        scoped = scoped_placement(problem, 4, greedy_placement, hash_salt="x")
        in_scope = set(lprr.scope_objects)
        for i, obj in enumerate(problem.object_ids):
            if obj not in in_scope:
                assert lprr.placement.assignment[i] == scoped.assignment[i]
