"""Tests for the failure-domain topology model (repro.cluster.topology)."""

import numpy as np
import pytest

from repro.cluster import (
    DOMAIN_KINDS,
    FailureDomain,
    Topology,
    parse_topology_spec,
    synthetic_topology,
)


class TestTopologyConstruction:
    def test_flat_every_node_its_own_domain(self):
        topo = Topology.flat(4)
        assert topo.num_nodes == 4
        assert topo.num_racks == 4
        assert topo.num_zones == 4
        for k in range(4):
            assert topo.domain_of(k, "rack") == k
            assert topo.domain_of(k, "zone") == k

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="racks"):
            Topology(racks=(0, 1), zones=(0,))

    def test_negative_domain_rejected(self):
        with pytest.raises(ValueError):
            Topology(racks=(0, -1), zones=(0, 0))

    def test_rack_split_across_zones_rejected(self):
        # Rack 0 cannot live in zone 0 and zone 1 at once.
        with pytest.raises(ValueError, match="zone"):
            Topology(racks=(0, 0), zones=(0, 1))

    def test_domain_ids_matches_domain_of(self):
        topo = synthetic_topology(9, zones=3, racks_per_zone=3)
        for kind in DOMAIN_KINDS:
            ids = topo.domain_ids(kind)
            assert ids.dtype == np.int64
            for k in range(topo.num_nodes):
                assert int(ids[k]) == topo.domain_of(k, kind)

    def test_unknown_kind_rejected(self):
        topo = Topology.flat(2)
        with pytest.raises(ValueError, match="kind"):
            topo.domain_ids("cage")


class TestSyntheticTopology:
    def test_balanced_and_contiguous(self):
        topo = synthetic_topology(12, zones=3, racks_per_zone=2)
        assert topo.num_zones == 3
        assert topo.num_racks == 6
        for z in range(3):
            assert len(topo.zone_nodes(z)) == 4
        for r in range(6):
            assert len(topo.rack_nodes(r)) == 2
        # Contiguous: node indices within a zone form a run.
        for z in range(3):
            nodes = topo.zone_nodes(z)
            assert nodes == tuple(range(nodes[0], nodes[0] + len(nodes)))

    def test_uneven_nodes_still_cover_everything(self):
        topo = synthetic_topology(10, zones=3, racks_per_zone=2)
        seen = sorted(
            k for z in range(topo.num_zones) for k in topo.zone_nodes(z)
        )
        assert seen == list(range(10))

    def test_deterministic(self):
        a = synthetic_topology(8, zones=2, racks_per_zone=2)
        b = synthetic_topology(8, zones=2, racks_per_zone=2)
        assert a == b


class TestSpreadLevel:
    def test_prefers_widest_satisfiable_domain(self):
        topo = synthetic_topology(8, zones=2, racks_per_zone=2)
        assert topo.spread_level(2) == "zone"
        assert topo.spread_level(3) == "rack"  # only 2 zones, 4 racks
        assert topo.spread_level(5) == "node"  # only 4 racks

    def test_flat_zone_spread_is_node_spread(self):
        # Flat topologies make every node its own zone, so zone spread
        # degenerates to plain distinct-node replication.
        topo = Topology.flat(5)
        assert topo.spread_level(2) == "zone"
        assert list(topo.domain_ids("zone")) == list(range(5))


class TestLabelsAndTree:
    def test_labels_round_trip_through_nodes_of_domain(self):
        topo = synthetic_topology(8, zones=2, racks_per_zone=2)
        for kind in ("zone", "rack"):
            for label in topo.domain_labels(kind):
                nodes = topo.nodes_of_domain(label)
                assert nodes
                for k in nodes:
                    assert topo.label_of(k, kind) == label

    def test_tree_covers_all_nodes_once(self):
        topo = synthetic_topology(8, zones=2, racks_per_zone=2)
        root = topo.tree()
        assert isinstance(root, FailureDomain)
        leaves = [d for d in root.walk() if d.kind == "node"]
        assert sorted(d.nodes[0] for d in leaves) == list(range(8))

    def test_to_dict_round_trip(self):
        topo = synthetic_topology(10, zones=2, racks_per_zone=3)
        assert Topology.from_dict(topo.to_dict()) == topo


class TestParseTopologySpec:
    def test_parses_zones_and_racks(self):
        topo = parse_topology_spec("zones:2,racks:2", 8)
        assert topo.num_zones == 2
        assert topo.num_racks == 4

    def test_zones_only(self):
        topo = parse_topology_spec("zones:3", 9)
        assert topo.num_zones == 3

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_topology_spec("shelves:2", 8)
        with pytest.raises(ValueError):
            parse_topology_spec("zones:zero", 8)
