"""Second tranche of cross-cutting property tests (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decompose import correlation_components
from repro.core.local_search import local_search_placement
from repro.core.placement import Placement
from repro.core.problem import PlacementProblem
from repro.core.replication import (
    greedy_replicated_placement,
    hash_replicated_placement,
)
from repro.core.spectral import spectral_placement


@st.composite
def problems(draw, max_objects=12, max_nodes=5):
    t = draw(st.integers(2, max_objects))
    n = draw(st.integers(2, max_nodes))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    sizes = rng.uniform(0.5, 2.0, t)
    objects = {f"o{i}": float(sizes[i]) for i in range(t)}
    capacity = float(sizes.sum() / n * 2.0 + sizes.max())
    correlations = {}
    for i in range(t):
        for j in range(i + 1, t):
            if rng.random() < 0.4:
                correlations[(f"o{i}", f"o{j}")] = float(rng.uniform(0.01, 1.0))
    return PlacementProblem.build(
        objects, {k: capacity for k in range(n)}, correlations
    )


class TestReplicationProperties:
    @settings(max_examples=25, deadline=None)
    @given(problem=problems(), replicas=st.integers(1, 2))
    def test_hash_replication_valid_and_deterministic(self, problem, replicas):
        a = hash_replicated_placement(problem, replicas)
        b = hash_replicated_placement(problem, replicas)
        assert np.array_equal(a.assignment, b.assignment)
        assert a.replication_factor == replicas
        # Any-copy cost never exceeds the primary's single-copy cost.
        assert a.communication_cost() <= a.primary().communication_cost() + 1e-12

    @settings(max_examples=25, deadline=None)
    @given(problem=problems())
    def test_greedy_replication_never_worse_than_primary(self, problem):
        replicated = greedy_replicated_placement(problem, replicas=2)
        assert (
            replicated.communication_cost()
            <= replicated.primary().communication_cost() + 1e-12
        )

    @settings(max_examples=25, deadline=None)
    @given(problem=problems())
    def test_replica_loads_sum_to_copies_times_size(self, problem):
        replicated = hash_replicated_placement(problem, replicas=2)
        assert replicated.node_loads().sum() == pytest.approx(
            2 * problem.total_size
        )


class TestSpectralProperties:
    @settings(max_examples=25, deadline=None)
    @given(problem=problems())
    def test_spectral_total_and_deterministic(self, problem):
        a = spectral_placement(problem)
        b = spectral_placement(problem)
        assert np.array_equal(a.assignment, b.assignment)
        assert np.all(a.assignment >= 0)
        assert np.all(a.assignment < problem.num_nodes)

    @settings(max_examples=20, deadline=None)
    @given(problem=problems(max_nodes=3))
    def test_spectral_cost_bounded(self, problem):
        placement = spectral_placement(problem)
        assert placement.communication_cost() <= problem.total_pair_weight + 1e-9


class TestLocalSearchProperties:
    @settings(max_examples=20, deadline=None)
    @given(problem=problems(max_objects=8, max_nodes=3), seed=st.integers(0, 500))
    def test_monotone_improvement(self, problem, seed):
        rng = np.random.default_rng(seed)
        start = Placement(
            problem, rng.integers(0, problem.num_nodes, problem.num_objects)
        )
        improved = local_search_placement(problem, start=start, rng=seed)
        assert (
            improved.communication_cost() <= start.communication_cost() + 1e-12
        )

    @settings(max_examples=20, deadline=None)
    @given(problem=problems(max_objects=8, max_nodes=3))
    def test_local_optimum_fixed_point(self, problem):
        first = local_search_placement(problem, rng=0)
        second = local_search_placement(problem, start=first, rng=0)
        assert second.communication_cost() == pytest.approx(
            first.communication_cost()
        )


class TestDecomposeProperties:
    @settings(max_examples=30, deadline=None)
    @given(problem=problems())
    def test_components_partition_objects(self, problem):
        components = correlation_components(problem)
        flattened = [obj for comp in components for obj in comp]
        assert sorted(map(str, flattened)) == sorted(map(str, problem.object_ids))

    @settings(max_examples=30, deadline=None)
    @given(problem=problems())
    def test_no_positive_pair_crosses_components(self, problem):
        components = correlation_components(problem)
        index_of = {}
        for c, comp in enumerate(components):
            for obj in comp:
                index_of[obj] = c
        for pair in problem.pairs():
            if pair.weight > 0:
                a = problem.object_ids[pair.i]
                b = problem.object_ids[pair.j]
                assert index_of[a] == index_of[b]
