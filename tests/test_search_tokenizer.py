"""Tests for tokenization and stopwords (repro.search)."""

from repro.search.stopwords import STOPWORDS, is_stopword
from repro.search.tokenizer import distinct_words, strip_html, tokenize


class TestStopwords:
    def test_common_words_are_stopwords(self):
        for word in ("the", "and", "of", "is"):
            assert is_stopword(word)

    def test_case_insensitive(self):
        assert is_stopword("The")
        assert is_stopword("AND")

    def test_content_words_are_not(self):
        for word in ("database", "placement", "keyword"):
            assert not is_stopword(word)

    def test_list_is_lowercase(self):
        assert all(w == w.lower() for w in STOPWORDS)


class TestStripHtml:
    def test_removes_tags(self):
        assert strip_html("<p>hello <b>world</b></p>").split() == ["hello", "world"]

    def test_removes_script_blocks_with_content(self):
        text = strip_html("<script>var x = 'evil';</script>visible")
        assert "evil" not in text
        assert "visible" in text

    def test_removes_style_blocks(self):
        text = strip_html("<style>.a { color: red }</style>shown")
        assert "color" not in text
        assert "shown" in text

    def test_removes_entities(self):
        assert "amp" not in strip_html("tom &amp; jerry")
        assert "8217" not in strip_html("it&#8217;s")


class TestTokenize:
    def test_lowercases(self):
        assert tokenize("Hello WORLD") == ["hello", "world"]

    def test_removes_stopwords_by_default(self):
        assert tokenize("the quick brown fox") == ["quick", "brown", "fox"]

    def test_keeps_stopwords_when_asked(self):
        assert "the" in tokenize("the fox", remove_stopwords=False)

    def test_preserves_order_and_duplicates(self):
        assert tokenize("red fish blue fish") == ["red", "fish", "blue", "fish"]

    def test_min_length_filter(self):
        assert tokenize("go to x code", min_length=3, remove_stopwords=False) == ["code"]

    def test_numbers_are_tokens(self):
        assert tokenize("top 10 lists") == ["top", "10", "lists"]

    def test_apostrophes_kept_inside_words(self):
        assert tokenize("o'reilly books") == ["o'reilly", "books"]

    def test_html_stripping_integrated(self):
        tokens = tokenize("<h1>Search Engines</h1>", strip_markup=True)
        assert tokens == ["search", "engines"]

    def test_punctuation_splits(self):
        assert tokenize("data-intensive, apps!") == ["data", "intensive", "apps"]

    def test_empty_text(self):
        assert tokenize("") == []

    def test_distinct_words(self):
        assert distinct_words("red fish blue fish") == {"red", "fish", "blue"}
