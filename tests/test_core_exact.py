"""Tests for the exact branch-and-bound solver (repro.core.exact)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exact import solve_exact
from repro.core.placement import Placement
from repro.core.problem import PlacementProblem
from repro.exceptions import InfeasibleProblemError


def brute_force_optimum(problem):
    """Reference: enumerate every assignment (tiny instances only)."""
    best = np.inf
    t, n = problem.num_objects, problem.num_nodes
    for assignment in itertools.product(range(n), repeat=t):
        placement = Placement(problem, np.asarray(assignment))
        if placement.is_feasible():
            best = min(best, placement.communication_cost())
    return best


class TestExactSolver:
    def test_trivial_single_node(self):
        p = PlacementProblem.build({"a": 1.0, "b": 1.0}, 1, {("a", "b"): 1.0})
        solution = solve_exact(p)
        assert solution.cost == 0.0

    def test_forced_split(self):
        p = PlacementProblem.build(
            {"a": 3.0, "b": 3.0}, {0: 4.0, 1: 4.0}, {("a", "b"): 1.0}
        )
        assert solve_exact(p).cost == pytest.approx(3.0)

    def test_clusters_colocate(self):
        p = PlacementProblem.build(
            {"a": 1.0, "b": 1.0, "c": 1.0, "d": 1.0},
            {0: 2.0, 1: 2.0},
            {("a", "b"): 0.9, ("c", "d"): 0.8, ("a", "c"): 0.1},
        )
        solution = solve_exact(p)
        assert solution.cost == pytest.approx(0.1 * 1.0)
        assert solution.placement.is_feasible()

    def test_infeasible_raises(self):
        p = PlacementProblem.build(
            {"a": 3.0, "b": 3.0, "c": 3.0}, {0: 3.0, 1: 3.0}, {}
        )
        with pytest.raises(InfeasibleProblemError):
            solve_exact(p)

    def test_size_guard(self):
        p = PlacementProblem.build({f"o{i}": 1.0 for i in range(25)}, 2, {})
        with pytest.raises(ValueError, match="limited to"):
            solve_exact(p)
        # But an explicit override is honoured.
        solution = solve_exact(p, max_objects=25)
        assert solution.cost == 0.0

    def test_matches_brute_force_on_fixed_instance(self):
        p = PlacementProblem.build(
            {"a": 2.0, "b": 1.0, "c": 2.0, "d": 1.0, "e": 1.0},
            {0: 4.0, 1: 4.0},
            {
                ("a", "b"): 0.7,
                ("b", "c"): 0.6,
                ("c", "d"): 0.5,
                ("d", "e"): 0.4,
                ("a", "e"): 0.3,
            },
        )
        assert solve_exact(p).cost == pytest.approx(brute_force_optimum(p))

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_property_matches_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        t = int(rng.integers(2, 6))
        n = int(rng.integers(2, 4))
        objects = {f"o{i}": float(rng.uniform(1, 3)) for i in range(t)}
        capacity = max(objects.values()) * t / n + 1.0
        corr = {}
        for i in range(t):
            for j in range(i + 1, t):
                if rng.random() < 0.7:
                    corr[(f"o{i}", f"o{j}")] = float(rng.uniform(0, 1))
        p = PlacementProblem.build(objects, {k: capacity for k in range(n)}, corr)
        reference = brute_force_optimum(p)
        if reference == np.inf:
            with pytest.raises(InfeasibleProblemError):
                solve_exact(p)
        else:
            assert solve_exact(p).cost == pytest.approx(reference, abs=1e-9)

    def test_heterogeneous_capacities(self):
        # Big node can hold the heavy pair; small node takes the crumb.
        p = PlacementProblem.build(
            {"x": 4.0, "y": 4.0, "z": 1.0},
            {0: 8.0, 1: 1.0},
            {("x", "y"): 1.0},
        )
        solution = solve_exact(p)
        assert solution.cost == 0.0
        assert solution.placement.node_of("x") == solution.placement.node_of("y") == 0

    def test_explored_nodes_counted(self):
        p = PlacementProblem.build(
            {"a": 1.0, "b": 1.0}, 2, {("a", "b"): 1.0}
        )
        assert solve_exact(p).nodes_explored >= 1
