"""Tests for the observability subsystem (repro.obs)."""

import json
import threading
import time

import numpy as np
import pytest

from repro import LPRRPlanner, PlacementProblem, obs, round_best_of, solve_placement_lp
from repro.obs.export import (
    metrics_to_dict,
    render_span_tree,
    to_json,
    to_prometheus,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.span import NULL_SPAN, Tracer


@pytest.fixture(autouse=True)
def _isolated_obs():
    """Every test starts and ends with instrumentation disabled."""
    obs.disable()
    yield
    obs.disable()


def small_problem():
    return PlacementProblem.build(
        {f"o{i}": 1.0 for i in range(12)},
        {k: 4.0 for k in range(4)},
        {(f"o{i}", f"o{i + 1}"): 0.5 for i in range(0, 12, 2)},
    )


class TestSpans:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child-a") as a:
                with tracer.span("grandchild"):
                    pass
            with tracer.span("child-b"):
                pass
        assert [s.name for s in tracer.roots] == ["root"]
        assert [c.name for c in root.children] == ["child-a", "child-b"]
        assert [g.name for g in a.children] == ["grandchild"]

    def test_attributes_from_kwargs_and_set(self):
        tracer = Tracer()
        with tracer.span("s", backend="highs") as sp:
            sp.set(iterations=7)
        assert sp.attributes == {"backend": "highs", "iterations": 7}

    def test_duration_stamped_on_exit(self):
        tracer = Tracer()
        with tracer.span("s") as sp:
            time.sleep(0.001)
        assert sp.end_time is not None
        assert sp.duration >= 0.001
        frozen = sp.duration
        assert sp.duration == frozen  # closed spans stop ticking

    def test_sibling_threads_become_separate_roots(self):
        tracer = Tracer()

        def worker(i):
            with tracer.span(f"thread-{i}"):
                pass

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(s.name for s in tracer.roots) == [
            "thread-0",
            "thread-1",
            "thread-2",
            "thread-3",
        ]

    def test_find_and_walk(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("b"):
                pass
        assert len(tracer.find("b")) == 2
        assert [s.name for s in tracer.roots[0].walk()] == ["a", "b", "b"]

    def test_disabled_span_is_shared_noop(self):
        assert obs.span("anything") is NULL_SPAN
        with obs.span("x") as sp:
            assert sp.set(a=1) is sp
        assert sp.duration == 0.0

    def test_timed_measures_even_when_disabled(self):
        assert not obs.is_enabled()
        with obs.timed("stopwatch") as sp:
            time.sleep(0.001)
        assert sp.duration >= 0.001

    def test_timed_joins_tree_when_enabled(self):
        inst = obs.enable(obs.Instrumentation())
        with obs.timed("outer"):
            with obs.timed("inner"):
                pass
        assert [s.name for s in inst.tracer.roots] == ["outer"]
        assert [c.name for c in inst.tracer.roots[0].children] == ["inner"]


class TestHistogram:
    def test_percentiles_match_numpy_linear_interpolation(self):
        rng = np.random.default_rng(7)
        values = rng.normal(100.0, 25.0, size=501)
        hist = Histogram("h")
        for v in values:
            hist.observe(float(v))
        for p in (0, 10, 50, 90, 95, 99, 100):
            assert hist.percentile(p) == pytest.approx(
                float(np.percentile(values, p)), rel=1e-12
            )

    def test_summary_fields(self):
        hist = Histogram("h")
        for v in [4.0, 1.0, 3.0, 2.0]:
            hist.observe(v)
        summary = hist.summary()
        assert summary["count"] == 4
        assert summary["sum"] == 10.0
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0
        assert summary["mean"] == 2.5
        assert summary["p50"] == 2.5

    def test_empty_histogram_is_all_zeros(self):
        hist = Histogram("h")
        assert hist.percentile(99) == 0.0
        assert hist.summary()["count"] == 0

    def test_percentile_range_validated(self):
        with pytest.raises(ValueError):
            Histogram("h").percentile(101)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.names() == ["a"]

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("a")

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12.0

    def test_registry_is_thread_safe(self):
        registry = MetricsRegistry()
        per_thread, threads = 5000, 8

        def worker():
            counter = registry.counter("hits")
            hist = registry.histogram("obs")
            for i in range(per_thread):
                counter.inc()
                hist.observe(i)

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert registry.counter("hits").value == per_thread * threads
        assert registry.histogram("obs").count == per_thread * threads
        assert len(registry) == 2


class TestExporters:
    def _populated(self):
        inst = obs.Instrumentation()
        inst.metrics.counter("engine.queries").inc(3)
        inst.metrics.gauge("lp.num_variables").set(24)
        hist = inst.metrics.histogram("engine.query.bytes")
        for v in (0.0, 100.0, 200.0):
            hist.observe(v)
        with inst.tracer.span("evaluate"):
            with inst.tracer.span("replay", queries=3):
                pass
        return inst

    def test_json_document_shape(self):
        inst = self._populated()
        doc = json.loads(to_json(inst.metrics, inst.tracer))
        assert doc["metrics"]["counters"] == {"engine.queries": 3.0}
        assert doc["metrics"]["gauges"] == {"lp.num_variables": 24.0}
        hist = doc["metrics"]["histograms"]["engine.query.bytes"]
        assert hist["count"] == 3
        assert hist["sum"] == 300.0
        assert set(hist) == {
            "count", "sum", "min", "max", "mean", "p50", "p90", "p95", "p99",
        }
        (root,) = doc["spans"]
        assert root["name"] == "evaluate"
        assert root["children"][0]["name"] == "replay"
        assert root["children"][0]["attributes"] == {"queries": 3}

    def test_metrics_to_dict_groups_by_kind(self):
        grouped = metrics_to_dict(self._populated().metrics)
        assert set(grouped) == {"counters", "gauges", "histograms"}

    def test_prometheus_format(self):
        text = to_prometheus(self._populated().metrics)
        assert "# TYPE engine_queries_total counter" in text
        assert "engine_queries_total 3" in text
        assert "# TYPE lp_num_variables gauge" in text
        assert "# TYPE engine_query_bytes summary" in text
        assert 'engine_query_bytes{quantile="0.5"} 100' in text
        assert "engine_query_bytes_sum 300" in text
        assert "engine_query_bytes_count 3" in text
        assert "." not in text.split()[2]  # names are sanitized

    def test_console_tree_renders_nesting(self):
        inst = self._populated()
        tree = render_span_tree(inst.tracer)
        lines = tree.splitlines()
        assert lines[0].startswith("evaluate")
        assert "└─ replay" in lines[1]
        assert "queries=3" in lines[1]

    def test_empty_tracer_renders_placeholder(self):
        assert render_span_tree(Tracer()) == "(no spans recorded)"


class TestPipelineIntegration:
    def test_plan_emits_spans_and_metrics(self):
        inst = obs.enable(obs.Instrumentation())
        LPRRPlanner(seed=0).plan(small_problem())
        names = {s.name for s in inst.tracer.all_spans()}
        assert {"lprr.plan", "lprr.scope", "lprr.lp", "lp", "lp.build",
                "lp.solve", "rounding"} <= names
        assert inst.metrics.histogram("lp.solve_seconds").count == 1
        assert inst.metrics.histogram("rounding.trial_cost").count == 10
        assert inst.metrics.counter("lprr.plans").value == 1

    def test_solve_seconds_sourced_from_span(self):
        inst = obs.enable(obs.Instrumentation())
        fractional = solve_placement_lp(small_problem())
        (solve_span,) = inst.tracer.find("lp.solve")
        assert fractional.stats.solve_seconds == pytest.approx(
            solve_span.duration
        )

    def test_best_trial_index_identifies_cheapest(self):
        fractional = solve_placement_lp(small_problem())
        result = round_best_of(fractional, trials=8, rng=3)
        assert 0 <= result.best_trial < 8
        assert result.trial_costs[result.best_trial] == min(result.trial_costs)
        assert result.cost == result.trial_costs[result.best_trial]

    def test_enabled_and_disabled_plans_agree(self):
        baseline = LPRRPlanner(seed=1).plan(small_problem())
        obs.enable(obs.Instrumentation())
        instrumented = LPRRPlanner(seed=1).plan(small_problem())
        obs.disable()
        assert np.array_equal(
            baseline.placement.assignment, instrumented.placement.assignment
        )
        assert baseline.cost == instrumented.cost


class TestDisabledOverhead:
    """The no-op fast path must be free enough to leave in hot loops."""

    def test_disabled_helpers_are_sub_microsecond(self):
        # A small LPRR plan makes a few hundred obs calls; at the bound
        # asserted here (10µs/call, ~100x the observed cost) their total
        # stays thousands of times below the plan's own runtime — i.e.
        # no measurable overhead.
        assert not obs.is_enabled()
        iterations = 20_000
        best = float("inf")
        for _ in range(3):  # best-of-3 shields against scheduler noise
            start = time.perf_counter()
            for _ in range(iterations):
                with obs.span("x"):
                    pass
                obs.counter("c").inc()
                obs.histogram("h").observe(1.0)
            best = min(best, time.perf_counter() - start)
        per_call = best / (iterations * 3)
        assert per_call < 10e-6

    def test_disabled_plan_records_nothing(self):
        assert not obs.is_enabled()
        result = LPRRPlanner(seed=0).plan(small_problem())
        assert result.lp_stats.solve_seconds > 0  # timing still real
        assert obs.current() is None


class TestSpanExceptions:
    """Spans must close and nest correctly when traced blocks raise."""

    def test_span_closes_and_pops_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom") as sp:
                raise RuntimeError("kaboom")
        assert sp.end_time is not None
        assert tracer.current() is None  # stack fully unwound
        assert [s.name for s in tracer.roots] == ["boom"]

    def test_sibling_after_exception_is_not_a_child(self):
        tracer = Tracer()
        with tracer.span("root"):
            with pytest.raises(ValueError):
                with tracer.span("failed"):
                    raise ValueError
            with tracer.span("recovered"):
                pass
        (root,) = tracer.roots
        assert [c.name for c in root.children] == ["failed", "recovered"]
        assert all(not c.children for c in root.children)

    def test_timed_closes_on_exception_enabled_and_disabled(self):
        with pytest.raises(KeyError):
            with obs.timed("detached") as sp:
                raise KeyError
        assert sp.end_time is not None
        inst = obs.enable(obs.Instrumentation())
        with pytest.raises(KeyError):
            with obs.timed("attached") as sp:
                raise KeyError
        assert sp.end_time is not None
        assert inst.tracer.current() is None

    def test_nested_exception_unwinds_whole_stack(self):
        inst = obs.enable(obs.Instrumentation())
        with pytest.raises(RuntimeError):
            with obs.span("a"):
                with obs.span("b"):
                    with obs.span("c"):
                        raise RuntimeError
        assert inst.tracer.current() is None
        (root,) = inst.tracer.roots
        assert all(s.end_time is not None for s in root.walk())


class TestHistogramReservoir:
    """Capped-reservoir mode: bounded memory, exact aggregates."""

    def test_exact_mode_is_default_and_unbounded(self):
        hist = Histogram("h")
        for i in range(5000):
            hist.observe(i)
        assert hist.reservoir is None
        assert hist.retained == 5000

    def test_reservoir_bounds_retained_observations(self):
        hist = Histogram("h", reservoir=100)
        for i in range(100_000):
            hist.observe(float(i))
        assert hist.retained == 100  # the memory-bound regression check
        assert hist.count == 100_000

    def test_aggregates_stay_exact_past_the_cap(self):
        hist = Histogram("h", reservoir=10)
        values = [float(i) for i in range(1000)]
        for v in values:
            hist.observe(v)
        assert hist.count == 1000
        assert hist.sum == sum(values)
        assert hist.min == 0.0
        assert hist.max == 999.0
        assert hist.mean == pytest.approx(sum(values) / 1000)

    def test_exact_until_the_cap_is_reached(self):
        hist = Histogram("h", reservoir=50)
        values = list(np.random.default_rng(0).normal(size=50))
        for v in values:
            hist.observe(float(v))
        assert hist.percentile(50) == pytest.approx(
            float(np.percentile(values, 50))
        )

    def test_reservoir_percentiles_are_reasonable_estimates(self):
        hist = Histogram("h", reservoir=500)
        for v in np.random.default_rng(1).uniform(0, 100, size=50_000):
            hist.observe(float(v))
        assert hist.percentile(50) == pytest.approx(50.0, abs=10.0)
        assert hist.percentile(90) == pytest.approx(90.0, abs=10.0)

    def test_reservoir_is_deterministic_per_name(self):
        def fill(name):
            hist = Histogram(name, reservoir=20)
            for i in range(2000):
                hist.observe(float(i))
            return hist.summary()

        assert fill("same") == fill("same")

    def test_observe_many_matches_repeated_observe(self):
        one = Histogram("h", reservoir=16)
        many = Histogram("h", reservoir=16)
        for v in (1.0, 2.0, 3.0):
            for _ in range(100):
                one.observe(v)
            many.observe_many(v, 100)
        assert one.summary() == many.summary()

    def test_reservoir_validation(self):
        with pytest.raises(ValueError):
            Histogram("h", reservoir=0)

    def test_runtime_helper_passes_reservoir_through(self):
        inst = obs.enable(obs.Instrumentation())
        hist = obs.histogram("bounded", reservoir=5)
        for i in range(50):
            hist.observe(i)
        assert inst.metrics.histogram("bounded").retained == 5


class TestLabels:
    def test_labelled_instruments_are_distinct(self):
        registry = MetricsRegistry()
        a = registry.counter("runs", labels={"case": "a"})
        b = registry.counter("runs", labels={"case": "b"})
        bare = registry.counter("runs")
        a.inc(1)
        b.inc(2)
        bare.inc(4)
        assert a is registry.counter("runs", labels={"case": "a"})
        assert (a.value, b.value, bare.value) == (1.0, 2.0, 4.0)
        grouped = metrics_to_dict(registry)
        assert grouped["counters"] == {
            "runs": 4.0,
            "runs{case=a}": 1.0,
            "runs{case=b}": 2.0,
        }

    def test_prometheus_renders_labels(self):
        registry = MetricsRegistry()
        registry.gauge("speedup", labels={"case": "lp", "tag": "plan"}).set(3)
        text = to_prometheus(registry)
        assert 'speedup{case="lp",tag="plan"} 3' in text

    def test_prometheus_escapes_hostile_label_values(self):
        from repro.obs.export import escape_label_value

        hostile = 'quote:" backslash:\\ newline:\nend'
        assert escape_label_value(hostile) == (
            'quote:\\" backslash:\\\\ newline:\\nend'
        )
        registry = MetricsRegistry()
        registry.counter("evil", labels={"v": hostile}).inc()
        text = to_prometheus(registry)
        # The exposition format is line-oriented: an unescaped newline
        # would split the sample across lines and corrupt the scrape.
        sample_lines = [l for l in text.splitlines() if l.startswith("evil")]
        assert len(sample_lines) == 1
        assert '\\n' in sample_lines[0]
        assert '\\"' in sample_lines[0]
        assert '\\\\' in sample_lines[0]
        hist = MetricsRegistry()
        hist.histogram("h", labels={"v": 'a"b'}).observe(1.0)
        hist_text = to_prometheus(hist)
        assert 'v="a\\"b",quantile="0.5"' in hist_text


class TestSpanPayloads:
    def test_round_trip_preserves_tree_and_timeline(self):
        from repro.obs.span import span_from_payload, span_to_payload

        tracer = Tracer()
        with tracer.span("root", pid=42) as root:
            with tracer.span("child", step=1):
                pass
        payload = span_to_payload(root)
        rebuilt = span_from_payload(payload)
        assert rebuilt.name == "root"
        assert rebuilt.attributes == {"pid": 42}
        assert rebuilt.start_time == root.start_time
        assert rebuilt.end_time == root.end_time
        (child,) = rebuilt.children
        assert child.name == "child"
        assert child.start_time >= rebuilt.start_time

    def test_payload_is_json_safe(self):
        from repro.obs.span import span_to_payload

        tracer = Tracer()
        with tracer.span("root") as root:
            pass
        json.dumps(span_to_payload(root))  # must not raise

    def test_legacy_payload_without_start_end_loads(self):
        from repro.obs.span import span_from_payload

        span = span_from_payload(
            {"name": "old", "duration_seconds": 1.5, "attributes": {}, "children": []}
        )
        assert span.duration == 1.5

    def test_attach_grafts_under_current_span(self):
        from repro.obs.span import span_from_payload, span_to_payload

        worker = Tracer()
        with worker.span("worker-root"):
            pass
        payload = span_to_payload(worker.roots[0])
        parent = Tracer()
        with parent.span("parent"):
            parent.attach(span_from_payload(payload))
        (root,) = parent.roots
        assert [c.name for c in root.children] == ["worker-root"]

    def test_attach_without_open_span_becomes_root(self):
        from repro.obs.span import Span

        tracer = Tracer()
        orphan = Span("orphan")
        orphan.finish()
        tracer.attach(orphan)
        assert [s.name for s in tracer.roots] == ["orphan"]


class TestChromeTrace:
    def _forest(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("local"):
                pass
            with tracer.span("rounding.worker", pid=1234):
                with tracer.span("inner"):
                    pass
        return tracer

    def test_document_shape(self):
        from repro.obs.export import to_chrome_trace

        doc = json.loads(to_chrome_trace(self._forest()))
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {
            "root", "local", "rounding.worker", "inner",
        }
        for e in complete:
            assert e["ts"] >= 0 and e["dur"] >= 0 and e["pid"] == 0

    def test_worker_subtree_gets_its_own_track(self):
        from repro.obs.export import to_chrome_trace

        doc = json.loads(to_chrome_trace(self._forest()))
        events = doc["traceEvents"]
        by_name = {e["name"]: e for e in events if e["ph"] == "X"}
        assert by_name["root"]["tid"] == by_name["local"]["tid"]
        worker_tid = by_name["rounding.worker"]["tid"]
        assert worker_tid != by_name["root"]["tid"]
        assert by_name["inner"]["tid"] == worker_tid  # inherits the track
        names = {
            e["tid"]: e["args"]["name"]
            for e in events
            if e["name"] == "thread_name"
        }
        assert names[worker_tid] == "worker pid=1234"

    def test_empty_forest_still_valid(self):
        from repro.obs.export import to_chrome_trace

        doc = json.loads(to_chrome_trace([]))
        assert [e["name"] for e in doc["traceEvents"]] == ["process_name"]
