"""Tests for the observability subsystem (repro.obs)."""

import json
import threading
import time

import numpy as np
import pytest

from repro import LPRRPlanner, PlacementProblem, obs, round_best_of, solve_placement_lp
from repro.obs.export import (
    metrics_to_dict,
    render_span_tree,
    to_json,
    to_prometheus,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.span import NULL_SPAN, Tracer


@pytest.fixture(autouse=True)
def _isolated_obs():
    """Every test starts and ends with instrumentation disabled."""
    obs.disable()
    yield
    obs.disable()


def small_problem():
    return PlacementProblem.build(
        {f"o{i}": 1.0 for i in range(12)},
        {k: 4.0 for k in range(4)},
        {(f"o{i}", f"o{i + 1}"): 0.5 for i in range(0, 12, 2)},
    )


class TestSpans:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child-a") as a:
                with tracer.span("grandchild"):
                    pass
            with tracer.span("child-b"):
                pass
        assert [s.name for s in tracer.roots] == ["root"]
        assert [c.name for c in root.children] == ["child-a", "child-b"]
        assert [g.name for g in a.children] == ["grandchild"]

    def test_attributes_from_kwargs_and_set(self):
        tracer = Tracer()
        with tracer.span("s", backend="highs") as sp:
            sp.set(iterations=7)
        assert sp.attributes == {"backend": "highs", "iterations": 7}

    def test_duration_stamped_on_exit(self):
        tracer = Tracer()
        with tracer.span("s") as sp:
            time.sleep(0.001)
        assert sp.end_time is not None
        assert sp.duration >= 0.001
        frozen = sp.duration
        assert sp.duration == frozen  # closed spans stop ticking

    def test_sibling_threads_become_separate_roots(self):
        tracer = Tracer()

        def worker(i):
            with tracer.span(f"thread-{i}"):
                pass

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(s.name for s in tracer.roots) == [
            "thread-0",
            "thread-1",
            "thread-2",
            "thread-3",
        ]

    def test_find_and_walk(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("b"):
                pass
        assert len(tracer.find("b")) == 2
        assert [s.name for s in tracer.roots[0].walk()] == ["a", "b", "b"]

    def test_disabled_span_is_shared_noop(self):
        assert obs.span("anything") is NULL_SPAN
        with obs.span("x") as sp:
            assert sp.set(a=1) is sp
        assert sp.duration == 0.0

    def test_timed_measures_even_when_disabled(self):
        assert not obs.is_enabled()
        with obs.timed("stopwatch") as sp:
            time.sleep(0.001)
        assert sp.duration >= 0.001

    def test_timed_joins_tree_when_enabled(self):
        inst = obs.enable(obs.Instrumentation())
        with obs.timed("outer"):
            with obs.timed("inner"):
                pass
        assert [s.name for s in inst.tracer.roots] == ["outer"]
        assert [c.name for c in inst.tracer.roots[0].children] == ["inner"]


class TestHistogram:
    def test_percentiles_match_numpy_linear_interpolation(self):
        rng = np.random.default_rng(7)
        values = rng.normal(100.0, 25.0, size=501)
        hist = Histogram("h")
        for v in values:
            hist.observe(float(v))
        for p in (0, 10, 50, 90, 95, 99, 100):
            assert hist.percentile(p) == pytest.approx(
                float(np.percentile(values, p)), rel=1e-12
            )

    def test_summary_fields(self):
        hist = Histogram("h")
        for v in [4.0, 1.0, 3.0, 2.0]:
            hist.observe(v)
        summary = hist.summary()
        assert summary["count"] == 4
        assert summary["sum"] == 10.0
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0
        assert summary["mean"] == 2.5
        assert summary["p50"] == 2.5

    def test_empty_histogram_is_all_zeros(self):
        hist = Histogram("h")
        assert hist.percentile(99) == 0.0
        assert hist.summary()["count"] == 0

    def test_percentile_range_validated(self):
        with pytest.raises(ValueError):
            Histogram("h").percentile(101)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.names() == ["a"]

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("a")

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12.0

    def test_registry_is_thread_safe(self):
        registry = MetricsRegistry()
        per_thread, threads = 5000, 8

        def worker():
            counter = registry.counter("hits")
            hist = registry.histogram("obs")
            for i in range(per_thread):
                counter.inc()
                hist.observe(i)

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert registry.counter("hits").value == per_thread * threads
        assert registry.histogram("obs").count == per_thread * threads
        assert len(registry) == 2


class TestExporters:
    def _populated(self):
        inst = obs.Instrumentation()
        inst.metrics.counter("engine.queries").inc(3)
        inst.metrics.gauge("lp.num_variables").set(24)
        hist = inst.metrics.histogram("engine.query.bytes")
        for v in (0.0, 100.0, 200.0):
            hist.observe(v)
        with inst.tracer.span("evaluate"):
            with inst.tracer.span("replay", queries=3):
                pass
        return inst

    def test_json_document_shape(self):
        inst = self._populated()
        doc = json.loads(to_json(inst.metrics, inst.tracer))
        assert doc["metrics"]["counters"] == {"engine.queries": 3.0}
        assert doc["metrics"]["gauges"] == {"lp.num_variables": 24.0}
        hist = doc["metrics"]["histograms"]["engine.query.bytes"]
        assert hist["count"] == 3
        assert hist["sum"] == 300.0
        assert set(hist) == {
            "count", "sum", "min", "max", "mean", "p50", "p90", "p95", "p99",
        }
        (root,) = doc["spans"]
        assert root["name"] == "evaluate"
        assert root["children"][0]["name"] == "replay"
        assert root["children"][0]["attributes"] == {"queries": 3}

    def test_metrics_to_dict_groups_by_kind(self):
        grouped = metrics_to_dict(self._populated().metrics)
        assert set(grouped) == {"counters", "gauges", "histograms"}

    def test_prometheus_format(self):
        text = to_prometheus(self._populated().metrics)
        assert "# TYPE engine_queries_total counter" in text
        assert "engine_queries_total 3" in text
        assert "# TYPE lp_num_variables gauge" in text
        assert "# TYPE engine_query_bytes summary" in text
        assert 'engine_query_bytes{quantile="0.5"} 100' in text
        assert "engine_query_bytes_sum 300" in text
        assert "engine_query_bytes_count 3" in text
        assert "." not in text.split()[2]  # names are sanitized

    def test_console_tree_renders_nesting(self):
        inst = self._populated()
        tree = render_span_tree(inst.tracer)
        lines = tree.splitlines()
        assert lines[0].startswith("evaluate")
        assert "└─ replay" in lines[1]
        assert "queries=3" in lines[1]

    def test_empty_tracer_renders_placeholder(self):
        assert render_span_tree(Tracer()) == "(no spans recorded)"


class TestPipelineIntegration:
    def test_plan_emits_spans_and_metrics(self):
        inst = obs.enable(obs.Instrumentation())
        LPRRPlanner(seed=0).plan(small_problem())
        names = {s.name for s in inst.tracer.all_spans()}
        assert {"lprr.plan", "lprr.scope", "lprr.lp", "lp", "lp.build",
                "lp.solve", "rounding"} <= names
        assert inst.metrics.histogram("lp.solve_seconds").count == 1
        assert inst.metrics.histogram("rounding.trial_cost").count == 10
        assert inst.metrics.counter("lprr.plans").value == 1

    def test_solve_seconds_sourced_from_span(self):
        inst = obs.enable(obs.Instrumentation())
        fractional = solve_placement_lp(small_problem())
        (solve_span,) = inst.tracer.find("lp.solve")
        assert fractional.stats.solve_seconds == pytest.approx(
            solve_span.duration
        )

    def test_best_trial_index_identifies_cheapest(self):
        fractional = solve_placement_lp(small_problem())
        result = round_best_of(fractional, trials=8, rng=3)
        assert 0 <= result.best_trial < 8
        assert result.trial_costs[result.best_trial] == min(result.trial_costs)
        assert result.cost == result.trial_costs[result.best_trial]

    def test_enabled_and_disabled_plans_agree(self):
        baseline = LPRRPlanner(seed=1).plan(small_problem())
        obs.enable(obs.Instrumentation())
        instrumented = LPRRPlanner(seed=1).plan(small_problem())
        obs.disable()
        assert np.array_equal(
            baseline.placement.assignment, instrumented.placement.assignment
        )
        assert baseline.cost == instrumented.cost


class TestDisabledOverhead:
    """The no-op fast path must be free enough to leave in hot loops."""

    def test_disabled_helpers_are_sub_microsecond(self):
        # A small LPRR plan makes a few hundred obs calls; at the bound
        # asserted here (10µs/call, ~100x the observed cost) their total
        # stays thousands of times below the plan's own runtime — i.e.
        # no measurable overhead.
        assert not obs.is_enabled()
        iterations = 20_000
        best = float("inf")
        for _ in range(3):  # best-of-3 shields against scheduler noise
            start = time.perf_counter()
            for _ in range(iterations):
                with obs.span("x"):
                    pass
                obs.counter("c").inc()
                obs.histogram("h").observe(1.0)
            best = min(best, time.perf_counter() - start)
        per_call = best / (iterations * 3)
        assert per_call < 10e-6

    def test_disabled_plan_records_nothing(self):
        assert not obs.is_enabled()
        result = LPRRPlanner(seed=0).plan(small_problem())
        assert result.lp_stats.solve_seconds > 0  # timing still real
        assert obs.current() is None
