"""Tests for document-partitioned search (repro.search.docpartition)."""

import pytest

from repro.search.docpartition import DocumentPartitionedEngine
from repro.search.documents import Corpus, Document
from repro.search.index import ITEM_BYTES, InvertedIndex
from repro.search.query import Query, QueryLog


@pytest.fixture
def corpus():
    docs = []
    for i in range(6):
        words = {"common"}
        if i % 2 == 0:
            words.add("even")
        if i < 2:
            words.add("rare")
        docs.append(Document(f"d{i}", frozenset(words)))
    return Corpus(docs)


@pytest.fixture
def engine(corpus):
    # Explicit partition: d0,d1 -> A; d2,d3 -> B; d4,d5 -> C.
    mapping = {f"d{i}": "ABC"[i // 2] for i in range(6)}
    return DocumentPartitionedEngine(corpus, mapping)


class TestConstruction:
    def test_hash_partitioning(self, corpus):
        engine = DocumentPartitionedEngine(corpus, 3)
        assert engine.num_nodes == 3
        total_docs = sum(
            engine.index_on(k).document_frequency("common") for k in engine.node_ids
        )
        assert total_docs == 6

    def test_explicit_partitioning(self, engine):
        assert engine.num_nodes == 3
        assert engine.index_on("A").document_frequency("rare") == 2

    def test_missing_assignment_rejected(self, corpus):
        with pytest.raises(ValueError, match="no node assignment"):
            DocumentPartitionedEngine(corpus, {"d0": "A"})

    def test_zero_nodes_rejected(self, corpus):
        with pytest.raises(ValueError):
            DocumentPartitionedEngine(corpus, 0)


class TestExecution:
    def test_result_matches_global_intersection(self, engine, corpus):
        global_index = InvertedIndex.from_corpus(corpus)
        for query in (("common",), ("common", "even"), ("rare", "even")):
            assert engine.total_result_check(global_index, Query(query))

    def test_single_partition_result_is_local(self, engine):
        # "rare" lives only in d0, d1 -> only node A has fragments.
        execution = engine.execute(["rare"])
        assert execution.bytes_transferred == 0
        assert execution.nodes_contacted == 1

    def test_fragments_ship_to_largest(self, engine):
        # "common" matches everywhere: 2 docs per node; two fragments
        # travel to the coordinator.
        execution = engine.execute(["common"])
        assert execution.nodes_contacted == 3
        assert execution.hops == 2
        assert execution.bytes_transferred == 2 * 2 * ITEM_BYTES

    def test_unknown_keyword_empty(self, engine):
        execution = engine.execute(["zzz"])
        assert execution.result_count == 0
        assert execution.bytes_transferred == 0

    def test_keyword_missing_on_node_gives_empty_fragment(self, engine):
        # "rare even": only d0 matches (node A); other nodes lack "rare".
        execution = engine.execute(["rare", "even"])
        assert execution.result_count == 1
        assert execution.bytes_transferred == 0

    def test_log_aggregation(self, engine):
        log = QueryLog([("rare",), ("common",)])
        stats = engine.execute_log(log)
        assert stats.queries == 2
        assert stats.local_queries == 1
        assert stats.local_fraction == pytest.approx(0.5)
        assert stats.mean_bytes_per_query == pytest.approx(
            stats.total_bytes / 2
        )

    def test_empty_log(self, engine):
        stats = engine.execute_log(QueryLog())
        assert stats.queries == 0
        assert stats.local_fraction == 0.0


class TestArchitectureComparison:
    def test_doc_partitioning_pays_on_every_broad_query(self):
        """The structural trade-off: document partitioning ships result
        fragments for every multi-node query regardless of correlation,
        while a keyword-partitioned engine with perfect co-location
        answers correlated queries locally."""
        docs = [
            Document(f"d{i}", frozenset({"car", "dealer"})) for i in range(12)
        ]
        corpus = Corpus(docs)
        doc_engine = DocumentPartitionedEngine(corpus, 4)
        doc_stats = doc_engine.execute_log(QueryLog([("car", "dealer")] * 10))

        from repro.search.engine import DistributedSearchEngine

        index = InvertedIndex.from_corpus(corpus)
        keyword_engine = DistributedSearchEngine(
            index, {"car": 0, "dealer": 0}
        )
        kw_stats = keyword_engine.execute_log(QueryLog([("car", "dealer")] * 10))
        assert kw_stats.total_bytes == 0
        assert doc_stats.total_bytes > 0
