"""Tests for index persistence (repro.search.indexio)."""

import numpy as np
import pytest

from repro.exceptions import TraceFormatError
from repro.search.documents import Corpus, Document
from repro.search.index import InvertedIndex
from repro.search.indexio import load_index, save_index


@pytest.fixture
def index():
    docs = [
        Document("d1", frozenset({"car", "dealer"})),
        Document("d2", frozenset({"car", "software"})),
        Document("d3", frozenset({"söftwäre", "download"})),  # unicode keyword
    ]
    return InvertedIndex.from_corpus(Corpus(docs))


class TestRoundTrip:
    def test_vocabulary_preserved(self, index, tmp_path):
        path = tmp_path / "index.npz"
        save_index(index, path)
        restored = load_index(path)
        assert restored.vocabulary == index.vocabulary

    def test_postings_identical(self, index, tmp_path):
        path = tmp_path / "index.npz"
        save_index(index, path)
        restored = load_index(path)
        for word in index.vocabulary:
            assert np.array_equal(restored.postings(word), index.postings(word))

    def test_sizes_and_queries_survive(self, index, tmp_path):
        path = tmp_path / "index.npz"
        save_index(index, path)
        restored = load_index(path)
        assert restored.total_bytes == index.total_bytes
        assert np.array_equal(
            restored.intersect(["car", "dealer"]),
            index.intersect(["car", "dealer"]),
        )

    def test_empty_index(self, tmp_path):
        path = tmp_path / "empty.npz"
        save_index(InvertedIndex(), path)
        assert len(load_index(path)) == 0


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceFormatError, match="cannot read"):
            load_index(tmp_path / "missing.npz")

    def test_foreign_archive_rejected(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, something=np.arange(3))
        with pytest.raises(TraceFormatError, match="not a repro index"):
            load_index(path)

    def test_version_mismatch_rejected(self, tmp_path, index):
        from repro.search import indexio

        path = tmp_path / "index.npz"
        save_index(index, path)
        # Tamper with the version marker.
        with np.load(path) as archive:
            arrays = {k: archive[k] for k in archive.files}
        arrays[indexio.FORMAT_KEY] = np.array([99], dtype=np.int64)
        np.savez(path, **arrays)
        with pytest.raises(TraceFormatError, match="v99 unsupported"):
            load_index(path)
