"""Tests for timestamped query streams (repro.workloads.stream)."""

import numpy as np
import pytest

from repro.workloads.query_gen import QueryWorkloadModel
from repro.workloads.stream import (
    TimedQuery,
    diurnal_rate,
    generate_stream,
    split_stream_by_window,
)

VOCAB = [f"w{i:03d}" for i in range(100)]


@pytest.fixture(scope="module")
def model():
    return QueryWorkloadModel(VOCAB, num_topics=10, seed=0)


class TestDiurnalRate:
    def test_peak_at_hour_16(self):
        peak = diurnal_rate(16 * 3600, base_qps=10.0, peak_factor=2.0)
        trough = diurnal_rate(4 * 3600, base_qps=10.0, peak_factor=2.0)
        assert peak == pytest.approx(20.0)
        assert trough == pytest.approx(5.0)

    def test_geometric_mean_is_base(self):
        peak = diurnal_rate(16 * 3600, 10.0, 3.0)
        trough = diurnal_rate(4 * 3600, 10.0, 3.0)
        assert np.sqrt(peak * trough) == pytest.approx(10.0)

    def test_periodicity(self):
        assert diurnal_rate(3600, 10.0) == pytest.approx(
            diurnal_rate(3600 + 24 * 3600, 10.0)
        )

    def test_flat_with_factor_one(self):
        for hour in (0, 6, 12, 18):
            assert diurnal_rate(hour * 3600, 7.0, 1.0) == pytest.approx(7.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            diurnal_rate(0, 0.0)
        with pytest.raises(ValueError):
            diurnal_rate(0, 1.0, 0.5)


class TestGenerateStream:
    def test_times_sorted_and_bounded(self, model):
        stream = generate_stream(model, duration_s=600, base_qps=5.0, seed=1)
        times = [tq.time_s for tq in stream]
        assert times == sorted(times)
        assert all(0 <= t < 600 for t in times)

    def test_count_tracks_rate(self, model):
        stream = generate_stream(model, duration_s=3600, base_qps=2.0, seed=2)
        # Expect ~7200 on average across the diurnal swing; generous band.
        assert 3000 < len(stream) < 16000

    def test_queries_attached(self, model):
        stream = generate_stream(model, duration_s=60, base_qps=5.0, seed=3)
        assert all(isinstance(tq, TimedQuery) for tq in stream)
        assert all(len(tq.query) >= 1 for tq in stream)

    def test_deterministic(self, model):
        a = generate_stream(model, duration_s=120, base_qps=3.0, seed=4)
        b = generate_stream(model, duration_s=120, base_qps=3.0, seed=4)
        assert [(t.time_s, t.query.keywords) for t in a] == [
            (t.time_s, t.query.keywords) for t in b
        ]

    def test_peak_hours_busier(self, model):
        stream = generate_stream(
            model, duration_s=24 * 3600, base_qps=1.0, peak_factor=3.0, seed=5
        )
        peak = sum(1 for tq in stream if 14 * 3600 <= tq.time_s < 18 * 3600)
        trough = sum(1 for tq in stream if 2 * 3600 <= tq.time_s < 6 * 3600)
        assert peak > trough * 1.5

    def test_invalid_duration(self, model):
        with pytest.raises(ValueError):
            generate_stream(model, duration_s=0)


class TestSplitStream:
    def test_windows_cover_stream(self, model):
        stream = generate_stream(model, duration_s=100, base_qps=5.0, seed=6)
        windows = list(split_stream_by_window(stream, window_s=10.0))
        assert sum(len(w) for w in windows) == len(stream)
        for w_index, window in enumerate(windows[:-1]):
            for tq in window:
                assert w_index * 10 <= tq.time_s < (w_index + 1) * 10

    def test_empty_middle_windows_emitted(self):
        stream = [TimedQuery(1.0, None), TimedQuery(25.0, None)]
        windows = list(split_stream_by_window(stream, window_s=10.0))
        assert [len(w) for w in windows] == [1, 0, 1]

    def test_empty_stream(self):
        assert list(split_stream_by_window([], 10.0)) == []

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            list(split_stream_by_window([TimedQuery(0.0, None)], 0.0))


class TestSplitStreamEdgeCases:
    def test_boundary_exact_query_goes_to_next_window(self):
        stream = [TimedQuery(0.0, None), TimedQuery(10.0, None)]
        windows = list(split_stream_by_window(stream, window_s=10.0))
        assert [len(w) for w in windows] == [1, 1]
        assert windows[1][0].time_s == 10.0

    def test_empty_window_run_preserves_indices(self):
        stream = [TimedQuery(5.0, None), TimedQuery(45.0, None)]
        windows = list(split_stream_by_window(stream, window_s=10.0))
        assert [len(w) for w in windows] == [1, 0, 0, 0, 1]

    def test_non_monotonic_timestamps_raise(self):
        stream = [TimedQuery(12.0, None), TimedQuery(3.0, None)]
        with pytest.raises(ValueError, match="non-decreasing"):
            list(split_stream_by_window(stream, window_s=10.0))

    def test_equal_timestamps_allowed(self):
        stream = [TimedQuery(4.0, None), TimedQuery(4.0, None)]
        windows = list(split_stream_by_window(stream, window_s=10.0))
        assert [len(w) for w in windows] == [2]
