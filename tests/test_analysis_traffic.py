"""Tests for traffic/load balance analysis (repro.analysis.traffic)."""

import numpy as np
import pytest

from repro.analysis.traffic import balance_report, link_utilization, sender_balance


class TestBalanceReport:
    def test_perfectly_even(self):
        report = balance_report([5.0, 5.0, 5.0, 5.0])
        assert report.max_over_mean == pytest.approx(1.0)
        assert report.coefficient_of_variation == pytest.approx(0.0)
        assert report.normalized_entropy == pytest.approx(1.0)
        assert report.is_balanced

    def test_hotspot_detected(self):
        report = balance_report([10.0, 1.0, 1.0, 1.0])
        assert report.hotspots == (0,)
        assert not report.is_balanced
        assert report.max_over_mean > 2.0

    def test_two_times_mean_boundary(self):
        # Exactly 2x the mean is not a hotspot (strict inequality).
        report = balance_report([2.0, 1.0, 0.0])
        assert report.values[0] == 2.0
        assert report.hotspots == ()

    def test_all_zero(self):
        report = balance_report([0.0, 0.0])
        assert report.max_over_mean == 0.0
        assert report.is_balanced

    def test_single_node(self):
        report = balance_report([7.0])
        assert report.max_over_mean == pytest.approx(1.0)

    def test_entropy_decreases_with_concentration(self):
        even = balance_report([1.0, 1.0, 1.0, 1.0])
        skewed = balance_report([100.0, 1.0, 1.0, 1.0])
        assert skewed.normalized_entropy < even.normalized_entropy

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            balance_report([])
        with pytest.raises(ValueError, match="nonnegative"):
            balance_report([-1.0])


class TestSenderBalance:
    def test_silent_nodes_count_as_zero(self):
        report = sender_balance({0: 100}, node_ids=[0, 1, 2, 3])
        assert len(report.values) == 4
        assert report.hotspots == (0,)

    def test_even_senders(self):
        report = sender_balance({0: 10, 1: 10}, node_ids=[0, 1])
        assert report.is_balanced


class TestLinkUtilization:
    def test_ignores_diagonal(self):
        matrix = np.array([[999.0, 1.0], [1.0, 999.0]])
        report = link_utilization(matrix)
        assert report.values == (1.0, 1.0)

    def test_detects_hot_link(self):
        matrix = np.zeros((3, 3))
        matrix[0, 1] = 60.0
        matrix[1, 2] = 1.0
        report = link_utilization(matrix)
        assert not report.is_balanced

    def test_single_node_matrix(self):
        report = link_utilization(np.zeros((1, 1)))
        assert report.is_balanced

    def test_non_square_rejected(self):
        with pytest.raises(ValueError, match="square"):
            link_utilization(np.zeros((2, 3)))

    def test_integration_with_network_model(self):
        from repro.cluster.network import NetworkModel

        net = NetworkModel([0, 1, 2])
        net.transfer(0, 1, 100)
        net.transfer(1, 2, 100)
        report = link_utilization(net.traffic_matrix())
        assert sum(report.values) == 200.0
