"""Tests for columnar traces (repro.workloads.traces.TraceColumns) and
every consumer of the columnar fast path, each checked against the
row-oriented oracle."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.correlation import operation_pairs
from repro.online.sketch import SketchCorrelationEstimator
from repro.online.windows import DecayingEstimator
from repro.search.documents import Corpus, Document
from repro.search.engine import DistributedSearchEngine
from repro.search.query import Query, QueryLog
from repro.workloads.traces import TraceColumns


def row_pairs(operations):
    out = []
    for op in operations:
        out.extend(operation_pairs(op, "cooccurrence"))
    return out


OPERATIONS = [
    ("b", "a", "c"),
    ("a", "a", "b"),  # duplicate inside one operation
    ("z",),  # singleton: no pairs
    (),  # empty operation
    ("c", "b"),
    ("a", "b", "c", "d", "e"),
]


class TestFromOperations:
    def test_roundtrip_preserves_rows_exactly(self):
        columns = TraceColumns.from_operations(OPERATIONS)
        assert list(columns.operations()) == OPERATIONS
        assert list(columns) == OPERATIONS
        assert len(columns) == len(OPERATIONS)

    def test_codes_are_repr_order(self):
        columns = TraceColumns.from_operations([("b", "a"), ("c",)])
        assert columns.ids == ("a", "b", "c")
        assert columns.codes.tolist() == [1, 0, 2]

    def test_arrays_are_frozen(self):
        columns = TraceColumns.from_operations(OPERATIONS)
        with pytest.raises(ValueError):
            columns.codes[0] = 5
        with pytest.raises(ValueError):
            columns.offsets[0] = 5

    def test_times_validated_and_frozen(self):
        columns = TraceColumns.from_operations(
            [("a",), ("b",)], times=[0.0, 1.5]
        )
        assert columns.times.tolist() == [0.0, 1.5]
        with pytest.raises(ValueError):
            columns.times[0] = 9.0
        with pytest.raises(ValueError, match="one entry per operation"):
            TraceColumns.from_operations([("a",)], times=[0.0, 1.0])

    def test_non_str_ids_clear_the_fast_path_gate(self):
        columns = TraceColumns.from_operations([(1, 2), ("a", 3)])
        assert not columns.all_str
        assert list(columns.operations()) == [(1, 2), ("a", 3)]


class TestCooccurrencePairs:
    def test_matches_row_path_on_fixed_trace(self):
        columns = TraceColumns.from_operations(OPERATIONS)
        assert columns.cooccurrence_pairs() == row_pairs(OPERATIONS)

    def test_matches_row_path_when_repr_and_value_order_diverge(self):
        # repr('a\'b') == '"a\'b"' sorts differently from the raw value;
        # the canonical flip must still agree with the row path.
        tricky = [("a'b", 'x"y', "plain"), ('x"y', "a"), ("a'b", "a")]
        columns = TraceColumns.from_operations(tricky)
        assert columns.cooccurrence_pairs() == row_pairs(tricky)

    def test_non_str_ids_use_the_row_fallback(self):
        trace = [(3, 1, 2), (1, 2)]
        columns = TraceColumns.from_operations(trace)
        assert columns.cooccurrence_pairs() == row_pairs(trace)

    def test_empty_trace(self):
        assert TraceColumns.from_operations([]).cooccurrence_pairs() == []
        assert TraceColumns.from_operations([(), ("x",)]).cooccurrence_pairs() == []

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.lists(
                st.text(
                    alphabet="abc'\"\\", min_size=1, max_size=3
                ),
                max_size=5,
            ).map(tuple),
            max_size=12,
        )
    )
    def test_property_equivalence(self, operations):
        columns = TraceColumns.from_operations(operations)
        assert columns.cooccurrence_pairs() == row_pairs(operations)


class TestEstimatorIngest:
    def trace(self, seed=0, n=400):
        rng = np.random.default_rng(seed)
        words = [f"w{i}" for i in range(30)]
        return [
            tuple(rng.choice(words, size=rng.integers(1, 5)))
            for _ in range(n)
        ]

    def test_observe_columns_equals_observe_trace(self):
        trace = self.trace()
        columns = TraceColumns.from_operations(trace)
        by_rows = SketchCorrelationEstimator(seed=0)
        by_rows.observe_trace(trace)
        by_columns = SketchCorrelationEstimator(seed=0)
        ops = by_columns.observe_columns(columns)
        assert ops == len(trace)
        assert by_rows.to_dict() == by_columns.to_dict()
        assert by_rows.correlations() == by_columns.correlations()

    def test_decaying_estimator_delegates(self):
        trace = self.trace(seed=1)
        columns = TraceColumns.from_operations(trace)
        by_rows = DecayingEstimator(SketchCorrelationEstimator(seed=0), 0.5)
        by_rows.observe_trace(trace)
        by_rows.advance_period()
        by_columns = DecayingEstimator(SketchCorrelationEstimator(seed=0), 0.5)
        assert by_columns.observe_columns(columns) == len(trace)
        by_columns.advance_period()
        assert (
            by_rows.estimator.to_dict() == by_columns.estimator.to_dict()
        )

    def test_decaying_estimator_row_fallback(self):
        class RowsOnly:
            """Minimal estimator without a columnar ingest."""

            def __init__(self):
                self.seen = []

            def observe(self, operation):
                self.seen.append(tuple(operation))

        trace = [("a", "b"), ("c",)]
        wrapper = DecayingEstimator(RowsOnly(), 1.0)
        assert wrapper.observe_columns(
            TraceColumns.from_operations(trace)
        ) == len(trace)
        assert wrapper.estimator.seen == trace


class TestExecuteLogColumnar:
    @pytest.fixture
    def engine(self):
        docs = []
        for i in range(10):
            words = {"alpha"}
            if i % 2 == 0:
                words.add("beta")
            if i % 3 == 0:
                words.add("gamma")
            docs.append(Document(f"d{i}", frozenset(words)))
        from repro.search.index import InvertedIndex

        index = InvertedIndex.from_corpus(Corpus(docs))
        placement = {"alpha": 0, "beta": 1, "gamma": 2}
        return DistributedSearchEngine(index, placement)

    def queries(self):
        base = [
            ("alpha",),
            ("alpha", "beta"),
            ("beta", "gamma"),
            ("alpha", "beta", "gamma"),
        ]
        return [base[i % len(base)] for i in range(50)]

    def test_columnar_replay_matches_row_replay(self, engine):
        rows = self.queries()
        columns = TraceColumns.from_operations(rows)
        by_rows = engine.execute_log(QueryLog(Query(q) for q in rows))
        by_columns = engine.execute_log(columns)
        assert by_rows == by_columns

    def test_columnar_replay_matches_undeduped_replay(self, engine):
        rows = self.queries()
        columns = TraceColumns.from_operations(rows)
        legacy = engine.execute_log(
            QueryLog(Query(q) for q in rows), dedup=False
        )
        assert engine.execute_log(columns) == legacy
