"""Streaming correlation mining and the online control loop."""

import json

import numpy as np
import pytest

from repro.core.correlation import CorrelationEstimator, PairEstimator
from repro.core.placement import Placement
from repro.core.problem import PlacementProblem
from repro.core.strategies import PlanConfig, available_planners, plan
from repro.online import (
    CountMinSketch,
    DecayingEstimator,
    DriftDetector,
    DriftThresholds,
    OnlineConfig,
    OnlinePlanner,
    SketchCorrelationEstimator,
    SpaceSavingPairs,
    TimedOperation,
    as_timed_operation,
    heavy_hitter_plan,
    pair_churn,
    tumbling_periods,
)


class TestCountMinSketch:
    def test_never_undercounts(self):
        sketch = CountMinSketch(width=16, depth=3, seed=1)
        truth = {}
        rng = np.random.default_rng(0)
        for _ in range(500):
            key = f"k{int(rng.integers(40))}"
            truth[key] = truth.get(key, 0) + 1
            sketch.add(key)
        for key, count in truth.items():
            assert sketch.estimate(key) >= count

    def test_exact_when_sparse(self):
        sketch = CountMinSketch(width=1024, depth=4, seed=0)
        sketch.add("a", 3.0)
        sketch.add("b", 2.0)
        assert sketch.estimate("a") == 3.0
        assert sketch.estimate("b") == 2.0
        assert sketch.total == 5.0

    def test_deterministic_across_instances(self):
        a = CountMinSketch(width=64, depth=4, seed=7)
        b = CountMinSketch(width=64, depth=4, seed=7)
        for key in ("x", ("p", "q"), 42):
            assert a._indices(key) == b._indices(key)

    def test_seed_changes_hashing(self):
        a = CountMinSketch(width=4096, depth=4, seed=0)
        b = CountMinSketch(width=4096, depth=4, seed=1)
        assert a._indices("x") != b._indices("x")

    def test_scale_and_bounds(self):
        sketch = CountMinSketch(width=32, depth=2, seed=0)
        sketch.add("a", 4.0)
        sketch.scale(0.5)
        assert sketch.estimate("a") == 2.0
        assert sketch.total == 2.0
        assert sketch.num_cells == 64
        assert 0 < sketch.epsilon < 1
        assert 0 < sketch.delta < 1

    def test_merge(self):
        a = CountMinSketch(width=32, depth=2, seed=3)
        b = CountMinSketch(width=32, depth=2, seed=3)
        a.add("x", 2.0)
        b.add("x", 5.0)
        a.merge(b)
        assert a.estimate("x") == 7.0

    def test_merge_mismatch_raises(self):
        a = CountMinSketch(width=32, depth=2, seed=0)
        b = CountMinSketch(width=32, depth=2, seed=1)
        with pytest.raises(ValueError, match="identical shape and seed"):
            a.merge(b)

    def test_negative_count_raises(self):
        with pytest.raises(ValueError, match="nonnegative"):
            CountMinSketch().add("a", -1.0)

    def test_round_trip(self):
        sketch = CountMinSketch(width=8, depth=2, seed=5)
        sketch.add(("a", "b"), 3.0)
        restored = CountMinSketch.from_dict(
            json.loads(json.dumps(sketch.to_dict()))
        )
        assert restored.estimate(("a", "b")) == sketch.estimate(("a", "b"))
        assert restored.total == sketch.total


class TestSpaceSavingPairs:
    def test_exact_below_capacity(self):
        tracker = SpaceSavingPairs(capacity=8)
        for _ in range(3):
            tracker.add(("a", "b"))
        tracker.add(("c", "d"))
        assert tracker.count(("a", "b")) == 3.0
        assert tracker.error(("a", "b")) == 0.0
        assert tracker.count(("x", "y")) == 0.0

    def test_memory_bounded(self):
        tracker = SpaceSavingPairs(capacity=4)
        for i in range(100):
            tracker.add((f"a{i}", f"b{i}"))
        assert len(tracker) <= 4
        assert tracker.max_tracked <= 4
        assert tracker.evictions == 96

    def test_heavy_hitter_guarantee(self):
        # A pair with true count > total/capacity must be tracked, and
        # count - error <= true <= count.
        tracker = SpaceSavingPairs(capacity=4)
        rng = np.random.default_rng(1)
        true = {}
        for _ in range(400):
            if rng.random() < 0.5:
                pair = ("hot", "pair")
            else:
                i = int(rng.integers(50))
                pair = (f"c{i}", f"d{i}")
            true[pair] = true.get(pair, 0) + 1
            tracker.add(pair)
        assert true[("hot", "pair")] > tracker.total / tracker.capacity
        count = tracker.count(("hot", "pair"))
        error = tracker.error(("hot", "pair"))
        assert count >= true[("hot", "pair")] >= count - error

    def test_items_order_deterministic(self):
        tracker = SpaceSavingPairs(capacity=8)
        tracker.add(("b", "c"))
        tracker.add(("a", "b"))
        tracker.add(("a", "b"))
        rows = tracker.items()
        assert rows[0][0] == ("a", "b")
        assert rows[1][0] == ("b", "c")

    def test_scale_zero_clears(self):
        tracker = SpaceSavingPairs(capacity=4)
        tracker.add(("a", "b"))
        tracker.scale(0.0)
        assert len(tracker) == 0
        assert tracker.total == 0.0

    def test_round_trip(self):
        tracker = SpaceSavingPairs(capacity=3)
        for i in range(10):
            tracker.add((f"a{i % 4}", f"b{i % 4}"))
        restored = SpaceSavingPairs.from_dict(
            json.loads(json.dumps(tracker.to_dict()))
        )
        assert restored.items() == tracker.items()
        assert restored.total == tracker.total
        assert restored.evictions == tracker.evictions


class TestSketchCorrelationEstimator:
    def test_satisfies_protocol(self):
        assert isinstance(SketchCorrelationEstimator(), PairEstimator)
        assert isinstance(CorrelationEstimator(), PairEstimator)

    def test_matches_exact_on_sparse_stream(self):
        trace = [("a", "b"), ("a", "b", "c"), ("b", "c"), ("a", "b")]
        exact = CorrelationEstimator()
        sketched = SketchCorrelationEstimator(width=1024, depth=4)
        exact.observe_all(trace)
        sketched.observe_all(trace)
        assert sketched.correlations() == exact.correlations()
        assert sketched.top_pairs(2) == exact.top_pairs(2)

    def test_size_aware_mode(self):
        sizes = {"a": 1.0, "b": 2.0, "c": 3.0}
        sketched = SketchCorrelationEstimator(mode="two_smallest", sizes=sizes)
        sketched.observe(("a", "b", "c"))
        assert sketched.correlations() == {("a", "b"): 1.0}

    def test_mode_requires_sizes(self):
        with pytest.raises(ValueError, match="requires object sizes"):
            SketchCorrelationEstimator(mode="two_smallest")

    def test_memory_cells(self):
        est = SketchCorrelationEstimator(width=128, depth=3, heavy_hitters=16)
        for i in range(1000):
            est.observe((f"x{i}", f"y{i}"))
        assert est.memory_cells == 128 * 3 + 16
        assert len(est.heavy) <= 16

    def test_decay(self):
        est = SketchCorrelationEstimator(width=64, depth=2)
        est.observe(("a", "b"))
        est.observe(("a", "b"))
        est.decay(0.5)
        # Probabilities survive decay; support shrinks below min_support.
        assert est.correlations()[("a", "b")] == pytest.approx(1.0)
        assert est.correlations(min_support=2) == {}

    def test_round_trip(self):
        est = SketchCorrelationEstimator(width=32, depth=2, heavy_hitters=4)
        est.observe_all([("a", "b"), ("b", "c"), ("a", "b")])
        restored = SketchCorrelationEstimator.from_dict(
            json.loads(json.dumps(est.to_dict()))
        )
        assert restored.correlations() == est.correlations()
        assert restored.num_operations == est.num_operations

    def test_size_aware_round_trip_warns_without_sizes(self):
        # JSON stringifies size keys; a size-aware restore without an
        # explicit sizes mapping would silently drop every non-string
        # object id, so it must warn.
        sizes = {1: 1.0, 2: 2.0, 3: 3.0}
        est = SketchCorrelationEstimator(mode="two_smallest", sizes=sizes)
        est.observe((1, 2, 3))
        doc = json.loads(json.dumps(est.to_dict()))
        with pytest.warns(UserWarning, match="pass sizes= explicitly"):
            SketchCorrelationEstimator.from_dict(doc)

    def test_size_aware_round_trip_with_explicit_sizes(self):
        sizes = {1: 1.0, 2: 2.0, 3: 3.0}
        est = SketchCorrelationEstimator(mode="two_smallest", sizes=sizes)
        est.observe((1, 2, 3))
        doc = json.loads(json.dumps(est.to_dict()))
        restored = SketchCorrelationEstimator.from_dict(doc, sizes=sizes)
        restored.observe((1, 2, 3))
        assert restored.correlations()[(1, 2)] == pytest.approx(1.0)


class TestWindows:
    def test_tumbling_slicing(self):
        stream = [
            TimedOperation(0.0, ("a", "b")),
            TimedOperation(5.0, ("b", "c")),
            TimedOperation(10.0, ("c", "d")),  # exactly on the boundary
            TimedOperation(25.0, ("d", "e")),
        ]
        periods = list(tumbling_periods(stream, 10.0))
        assert [p.num_operations for p in periods] == [2, 1, 1]
        assert periods[1].operations == (("c", "d"),)
        assert periods[0].start_s == 0.0 and periods[0].end_s == 10.0

    def test_empty_middle_periods_emitted(self):
        stream = [TimedOperation(1.0, ("a", "b")), TimedOperation(35.0, ("c", "d"))]
        periods = list(tumbling_periods(stream, 10.0))
        assert [p.num_operations for p in periods] == [1, 0, 0, 1]

    def test_non_monotonic_raises(self):
        stream = [TimedOperation(5.0, ("a", "b")), TimedOperation(4.0, ("c", "d"))]
        with pytest.raises(ValueError, match="non-decreasing"):
            list(tumbling_periods(stream, 10.0))

    def test_epoch_timestamps_anchor_first_window(self):
        # A real query log carries absolute epoch times; period 0 must
        # be the first operation's window, not ~470k empty periods in.
        base = 1.7e9
        stream = [
            TimedOperation(base + 10.0, ("a", "b")),
            TimedOperation(base + 3650.0, ("b", "c")),
        ]
        periods = list(tumbling_periods(stream, 3600.0))
        assert [p.num_operations for p in periods] == [1, 1]
        assert periods[0].index == 0
        assert periods[0].start_s == (base // 3600.0) * 3600.0
        assert periods[0].start_s <= base + 10.0 < periods[0].end_s

    def test_explicit_origin(self):
        stream = [TimedOperation(25.0, ("a", "b"))]
        periods = list(tumbling_periods(stream, 10.0, origin_s=5.0))
        assert [p.num_operations for p in periods] == [0, 0, 1]
        assert periods[0].start_s == 5.0

    def test_timestamp_before_origin_raises(self):
        stream = [TimedOperation(1.0, ("a", "b"))]
        with pytest.raises(ValueError, match="precedes the stream origin"):
            list(tumbling_periods(stream, 10.0, origin_s=5.0))

    def test_empty_stream_no_periods(self):
        assert list(tumbling_periods([], 10.0)) == []

    def test_accepts_timed_queries(self):
        from repro.search.query import Query
        from repro.workloads.stream import TimedQuery

        stream = [TimedQuery(1.0, Query(("a", "b")))]
        periods = list(tumbling_periods(stream, 10.0))
        assert periods[0].operations == (("a", "b"),)

    def test_as_timed_operation_rejects_junk(self):
        with pytest.raises(TypeError, match="expected TimedQuery or TimedOperation"):
            as_timed_operation(("a", "b"))

    def test_decaying_estimator(self):
        inner = CorrelationEstimator()
        window = DecayingEstimator(inner, factor=0.5)
        window.observe(("a", "b"))
        window.advance_period()
        window.observe(("a", "b"))
        assert window.periods_advanced == 1
        # Old observation weighs 0.5, fresh one 1.0.
        assert inner._counts[("a", "b")] == pytest.approx(1.5)
        assert window.correlations()[("a", "b")] == pytest.approx(1.0)

    def test_decaying_estimator_validates_factor(self):
        with pytest.raises(ValueError, match="decay factor"):
            DecayingEstimator(CorrelationEstimator(), factor=0.0)


class TestDrift:
    def test_pair_churn(self):
        assert pair_churn([], []) == 0.0
        assert pair_churn([("a", "b")], [("a", "b")]) == 0.0
        assert pair_churn([("a", "b")], [("c", "d")]) == 1.0
        assert pair_churn(
            [("a", "b"), ("c", "d")], [("a", "b"), ("e", "f")]
        ) == pytest.approx(2 / 3)

    def test_unjudged_below_min_operations(self):
        detector = DriftDetector(DriftThresholds(min_operations=50))
        detector.rebase({("a", "b"): 0.5}, 1.0)
        decision = detector.assess({("c", "d"): 0.5}, 9.0, period_operations=10)
        assert not decision.judged
        assert not decision.replan

    def test_churn_trigger(self):
        detector = DriftDetector(DriftThresholds(churn=0.4, min_operations=0))
        detector.rebase({("a", "b"): 0.5}, 1.0)
        decision = detector.assess({("c", "d"): 0.5}, 1.0, period_operations=100)
        assert decision.replan
        assert decision.reasons == ("churn",)
        assert decision.churn == 1.0

    def test_inflation_trigger(self):
        detector = DriftDetector(
            DriftThresholds(churn=1.0, inflation=1.5, min_operations=0)
        )
        detector.rebase({("a", "b"): 0.5}, 1.0)
        decision = detector.assess({("a", "b"): 0.5}, 2.0, period_operations=100)
        assert decision.replan
        assert decision.reasons == ("inflation",)
        assert decision.inflation == pytest.approx(2.0)

    def test_stable_no_trigger(self):
        detector = DriftDetector(DriftThresholds(min_operations=0))
        detector.rebase({("a", "b"): 0.5}, 1.0)
        decision = detector.assess({("a", "b"): 0.5}, 1.0, period_operations=100)
        assert not decision.replan
        assert decision.reasons == ()

    def test_decision_to_dict_handles_zero_reference(self):
        detector = DriftDetector(DriftThresholds(min_operations=0))
        detector.rebase({}, 0.0)
        decision = detector.assess({("a", "b"): 0.5}, 1.0, period_operations=100)
        doc = decision.to_dict()
        assert doc["inflation"] is None
        json.dumps(doc)  # JSON-serializable despite the zero reference

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            DriftThresholds(churn=1.5)
        with pytest.raises(ValueError):
            DriftThresholds(inflation=0.9)


# ----------------------------------------------------------------------
# The acceptance scenario: a seeded stream whose correlation structure
# shifts mid-stream.
# ----------------------------------------------------------------------
SIZES = {f"o{i}": 1.0 for i in range(12)}
PRE_PAIRS = [
    ("o0", "o1"), ("o2", "o3"), ("o4", "o5"),
    ("o6", "o7"), ("o8", "o9"), ("o10", "o11"),
]
POST_PAIRS = [
    ("o0", "o2"), ("o1", "o3"), ("o4", "o6"),
    ("o5", "o7"), ("o8", "o10"), ("o9", "o11"),
]
WINDOW_S = 60.0
OPS_PER_PERIOD = 60
SHIFT_PERIOD = 3
NUM_PERIODS = 8


def shifting_stream(seed=7):
    rng = np.random.default_rng(seed)
    stream = []
    for period in range(NUM_PERIODS):
        pairs = PRE_PAIRS if period < SHIFT_PERIOD else POST_PAIRS
        for i in range(OPS_PER_PERIOD):
            time_s = period * WINDOW_S + i * WINDOW_S / OPS_PER_PERIOD
            pair = pairs[int(rng.integers(len(pairs)))]
            stream.append(TimedOperation(time_s, pair))
    return stream


def online_config():
    return OnlineConfig(
        num_nodes=4,
        window_s=WINDOW_S,
        sketch_width=256,
        sketch_depth=4,
        heavy_hitters=8,
        decay=0.5,
        thresholds=DriftThresholds(churn=0.3, top_k=8, min_operations=20),
        budget_fraction=1.0,
        planning=PlanConfig(seed=0),
    )


class TestOnlinePlanner:
    @pytest.fixture(scope="class")
    def report(self):
        return OnlinePlanner(SIZES, online_config()).run(shifting_stream())

    def test_bootstraps_then_detects_drift(self, report):
        assert report.periods[0].action == "bootstrap"
        # The shift period must be judged drifting and replanned.
        shift = report.periods[SHIFT_PERIOD]
        assert shift.action == "replan"
        assert shift.drift.replan
        assert shift.drift.churn > 0.3
        assert report.replans >= 1

    def test_replans_respect_budget(self, report):
        for period in report.periods:
            if period.action == "replan":
                assert period.budget_bytes is not None
                assert period.bytes_moved <= period.budget_bytes + 1e-9

    def test_final_cost_matches_offline_plan(self, report):
        # Offline reference: exact correlations of the post-shift trace.
        post_trace = [
            op.objects for op in shifting_stream()
            if op.time_s >= SHIFT_PERIOD * WINDOW_S
        ]
        exact = CorrelationEstimator()
        exact.observe_all(post_trace)
        problem = PlacementProblem.build(SIZES, 4, exact.correlations())
        offline = plan(problem, "lprr", PlanConfig(seed=0))
        online_placement = Placement.from_mapping(
            problem, {obj: report.final_placement[obj] for obj in problem.object_ids}
        )
        online_cost = online_placement.communication_cost()
        assert online_cost <= 1.10 * offline.cost + 1e-9

    def test_memory_is_bounded(self, report):
        config = online_config()
        assert report.memory_cells == (
            config.sketch_width * config.sketch_depth + config.heavy_hitters
        )
        planner = OnlinePlanner(SIZES, config)
        planner.run(shifting_stream())
        assert planner.estimator.heavy.max_tracked <= config.heavy_hitters

    def test_reports_byte_identical(self, report):
        again = OnlinePlanner(SIZES, online_config()).run(shifting_stream())
        assert again.to_json() == report.to_json()

    def test_report_json_schema(self, report):
        doc = json.loads(report.to_json())
        assert doc["schema"] == "repro.online.report/v1"
        assert doc["replans"] == report.replans
        assert doc["total_operations"] == NUM_PERIODS * OPS_PER_PERIOD
        assert len(doc["periods"]) == NUM_PERIODS
        assert set(doc["final_placement"]) == set(SIZES)

    def test_render_mentions_replans(self, report):
        text = report.render()
        assert "replan" in text
        assert "bounded" in text

    def test_placement_mapping_before_bootstrap_raises(self):
        planner = OnlinePlanner(SIZES, online_config())
        with pytest.raises(RuntimeError, match="not bootstrapped"):
            planner.placement_mapping

    def test_exact_estimator_backend(self):
        # The controller accepts any PairEstimator; the exact one gives
        # an unbounded-memory but drift-equivalent run.
        planner = OnlinePlanner(
            SIZES, online_config(), estimator=CorrelationEstimator()
        )
        report = planner.run(shifting_stream())
        assert report.periods[SHIFT_PERIOD].action == "replan"
        assert report.memory_cells == 0  # exact backend reports no bound

    def test_out_of_universe_objects_are_ignored(self):
        # Objects missing from `sizes` must never crash the loop; a
        # stream of entirely unknown partners just keeps observing.
        planner = OnlinePlanner(
            {"a": 1.0, "b": 1.0}, OnlineConfig(num_nodes=2, window_s=10.0)
        )
        report = planner.run([TimedOperation(0.0, ("a", "x"))] * 30)
        assert [p.action for p in report.periods] == ["observe"]
        assert report.final_placement == {}

    def test_out_of_universe_objects_do_not_pollute_placement(self):
        # Mixed traffic: in-universe pairs drive the placement, unknown
        # objects are dropped before estimation.
        planner = OnlinePlanner(
            {"a": 1.0, "b": 1.0}, OnlineConfig(num_nodes=2, window_s=10.0)
        )
        stream = [
            TimedOperation(float(i), ("a", "b", f"junk{i}")) for i in range(8)
        ]
        report = planner.run(stream)
        assert report.periods[0].action == "bootstrap"
        assert set(report.final_placement) == {"a", "b"}
        # The colocatable pair ends up colocated despite the noise.
        assert report.final_cost_estimate == 0.0

    def test_preloaded_estimator_with_foreign_pairs(self):
        # A custom backend may arrive already tracking pairs outside
        # the placement universe; they must be filtered, not fatal.
        exact = CorrelationEstimator()
        exact.observe_all([("x", "y")] * 5)
        planner = OnlinePlanner(
            {"a": 1.0, "b": 1.0},
            OnlineConfig(num_nodes=2, window_s=10.0),
            estimator=exact,
        )
        report = planner.run([TimedOperation(0.0, ("a", "b"))] * 30)
        assert report.periods[0].action == "bootstrap"
        assert set(report.final_placement) == {"a", "b"}

    def test_budget_truncated_replan_resumes_in_stable_periods(self):
        # A tight budget truncates the replan's migration; the
        # remainder must drain in following periods as "migrate"
        # decisions instead of stalling on a rebased detector.
        config = OnlineConfig(
            num_nodes=4,
            window_s=WINDOW_S,
            sketch_width=256,
            sketch_depth=4,
            heavy_hitters=8,
            decay=0.5,
            thresholds=DriftThresholds(churn=0.3, top_k=8, min_operations=20),
            budget_fraction=2 / len(SIZES),  # two unit objects per period
            planning=PlanConfig(seed=0),
        )
        planner = OnlinePlanner(SIZES, config)
        report = planner.run(shifting_stream())
        assert report.periods[SHIFT_PERIOD].action == "replan"
        migrate = [p for p in report.periods if p.action == "migrate"]
        assert migrate, "truncated migration was never resumed"
        for p in report.periods:
            if p.action in ("replan", "migrate"):
                assert p.budget_bytes is not None
                assert p.bytes_moved <= p.budget_bytes + 1e-9
                assert p.moves > 0
        # Convergence completes: the pending target drains to nothing
        # and the post-shift pairs end up colocated.
        assert planner._pending_target is None
        assert report.final_cost_estimate == 0.0
        assert report.total_bytes_moved >= sum(p.bytes_moved for p in migrate)


class TestOnlinePlannerRegistry:
    def test_online_planner_registered(self):
        assert "online" in available_planners()

    def test_heavy_hitter_plan_scopes_to_paired_objects(self):
        sizes = {f"o{i}": 1.0 for i in range(8)}
        correlations = {("o0", "o1"): 0.5, ("o2", "o3"): 0.25}
        problem = PlacementProblem.build(sizes, 3, correlations)
        result = heavy_hitter_plan(problem, config=PlanConfig(seed=0))
        assert result.planner == "online"
        assert result.diagnostics["heavy_objects"] == 4
        assert result.placement.assignment.shape == (8,)

    def test_registry_dispatch(self):
        sizes = {"a": 1.0, "b": 1.0}
        problem = PlacementProblem.build(sizes, 2, {("a", "b"): 1.0})
        result = plan(problem, "online", PlanConfig(seed=0))
        assert result.planner == "online"
        assert result.cost == 0.0


class TestOnlineConfigValidation:
    def test_bad_values_raise(self):
        with pytest.raises(ValueError):
            OnlineConfig(num_nodes=0)
        with pytest.raises(ValueError):
            OnlineConfig(num_nodes=2, window_s=0)
        with pytest.raises(ValueError):
            OnlineConfig(num_nodes=2, decay=0.0)
        with pytest.raises(ValueError):
            OnlineConfig(num_nodes=2, budget_fraction=-0.1)

    def test_empty_sizes_raise(self):
        with pytest.raises(ValueError, match="at least one object"):
            OnlinePlanner({}, OnlineConfig(num_nodes=2))


class TestOnlineWarmStart:
    """Replans with the first-order backend reuse the previous solve."""

    def fo_config(self):
        base = online_config()
        return OnlineConfig(
            num_nodes=base.num_nodes,
            window_s=base.window_s,
            sketch_width=base.sketch_width,
            sketch_depth=base.sketch_depth,
            heavy_hitters=base.heavy_hitters,
            decay=base.decay,
            thresholds=base.thresholds,
            budget_fraction=base.budget_fraction,
            planning=PlanConfig(seed=0, backend="fo"),
        )

    def test_replan_consumes_previous_fractions(self):
        from repro import obs

        inst = obs.enable(obs.Instrumentation())
        try:
            planner = OnlinePlanner(SIZES, self.fo_config())
            report = planner.run(shifting_stream())
            assert report.replans >= 1
            # Bootstrap left a warm start behind and the replan hit it.
            assert planner._warm_start is not None
            hits = inst.metrics.counter("online.warm_start_hits").value
            assert hits >= 1
        finally:
            obs.disable()

    def test_warm_start_does_not_change_determinism(self):
        a = OnlinePlanner(SIZES, self.fo_config()).run(shifting_stream())
        b = OnlinePlanner(SIZES, self.fo_config()).run(shifting_stream())
        assert a.to_json() == b.to_json()

    def test_other_backends_skip_warm_start_plumbing(self):
        planner = OnlinePlanner(SIZES, online_config())
        config = planner._planning_config()
        # Default backend is not "fo": no warm start is attached even
        # after a plan has been remembered.
        assert config.warm_start is None
