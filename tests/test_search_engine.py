"""Tests for the distributed search engine (repro.search.engine)."""

import pytest

from repro.core.placement import Placement
from repro.search.documents import Corpus, Document
from repro.search.engine import DistributedSearchEngine, build_placement_problem
from repro.search.index import ITEM_BYTES, InvertedIndex
from repro.search.query import Query, QueryLog


@pytest.fixture
def corpus():
    docs = []
    # "common" in 5 docs, "rare" in 1, "mid" in 3, "other" in 2.
    for i in range(5):
        words = {"common"}
        if i == 0:
            words |= {"rare"}
        if i < 3:
            words |= {"mid"}
        if i >= 3:
            words |= {"other"}
        docs.append(Document(f"d{i}", frozenset(words)))
    return Corpus(docs)


@pytest.fixture
def index(corpus):
    return InvertedIndex.from_corpus(corpus)


class TestQueryExecution:
    def test_colocated_query_is_local(self, index):
        engine = DistributedSearchEngine(index, {w: 0 for w in index.vocabulary})
        execution = engine.execute(["rare", "common"])
        assert execution.is_local
        assert execution.bytes_transferred == 0
        assert execution.result_count == 1  # d0 only

    def test_split_pair_ships_smaller_index(self, index):
        engine = DistributedSearchEngine(index, {"rare": 0, "common": 1, "mid": 0, "other": 0})
        execution = engine.execute(["rare", "common"])
        # rare (df=1) is smallest; its postings ship to common's node.
        assert execution.bytes_transferred == 1 * ITEM_BYTES
        assert execution.hops == 1

    def test_pipelined_three_words(self, index):
        # rare@0, mid@1, common@2: ship rare result (1) to 1, then
        # intersection (d0 only: rare&mid -> d0) ships 1 posting to 2.
        engine = DistributedSearchEngine(
            index, {"rare": 0, "mid": 1, "common": 2, "other": 0}
        )
        execution = engine.execute(["common", "mid", "rare"])
        assert execution.hops == 2
        assert execution.bytes_transferred == 2 * ITEM_BYTES
        assert execution.result_count == 1

    def test_empty_intermediate_results_cost_nothing_later(self, index):
        # rare & other are disjoint -> after 2 words the result is empty.
        engine = DistributedSearchEngine(
            index, {"rare": 0, "other": 1, "common": 2, "mid": 0}
        )
        execution = engine.execute(["rare", "other", "common"])
        # rare (1 posting) ships to other's node; empty result ships free.
        assert execution.bytes_transferred == 1 * ITEM_BYTES
        assert execution.result_count == 0

    def test_single_keyword_query_local(self, index):
        engine = DistributedSearchEngine(index, {w: 3 for w in index.vocabulary})
        execution = engine.execute(["common"])
        assert execution.is_local
        assert execution.result_count == 5

    def test_unknown_keywords_ignored(self, index):
        engine = DistributedSearchEngine(index, {w: 0 for w in index.vocabulary})
        execution = engine.execute(["zzz"])
        assert execution.result_count == 0
        assert execution.nodes_contacted == 0

    def test_result_matches_plain_intersection(self, index):
        engine = DistributedSearchEngine(index, {w: hash(w) % 3 for w in index.vocabulary})
        execution = engine.execute(["common", "mid"])
        assert execution.result_count == index.intersect(["common", "mid"]).size

    def test_accepts_placement_object(self, index):
        problem_nodes = {0: float("inf"), 1: float("inf")}
        problem = build_placement_problem(
            index, QueryLog([("common", "rare")]), problem_nodes
        )
        placement = Placement.from_mapping(
            problem, {w: 0 for w in problem.object_ids}
        )
        engine = DistributedSearchEngine(index, placement)
        assert engine.execute(["common", "rare"]).is_local


class TestEngineStats:
    def test_log_aggregation(self, index):
        engine = DistributedSearchEngine(
            index, {"rare": 0, "common": 1, "mid": 1, "other": 1}
        )
        log = QueryLog([("rare", "common"), ("common", "mid"), ("zzz",)])
        stats = engine.execute_log(log)
        assert stats.queries == 3
        assert stats.local_queries == 2  # common&mid co-located; zzz trivial
        assert stats.total_bytes == 1 * ITEM_BYTES
        assert stats.local_fraction == pytest.approx(2 / 3)
        assert stats.mean_bytes_per_query == pytest.approx(ITEM_BYTES / 3)

    def test_per_node_bytes_sent(self, index):
        engine = DistributedSearchEngine(
            index, {"rare": 0, "common": 1, "mid": 1, "other": 1}
        )
        stats = engine.execute_log(QueryLog([("rare", "common")]))
        assert stats.per_node_bytes_sent == {0: ITEM_BYTES}

    def test_empty_log(self, index):
        engine = DistributedSearchEngine(index, {})
        stats = engine.execute_log(QueryLog())
        assert stats.queries == 0
        assert stats.local_fraction == 0.0


class TestBuildPlacementProblem:
    def test_sizes_come_from_index(self, index):
        problem = build_placement_problem(index, QueryLog([("common", "rare")]), 2)
        assert problem.size_of("common") == 5 * ITEM_BYTES
        assert problem.size_of("rare") == 1 * ITEM_BYTES

    def test_two_smallest_mode_default(self, index):
        log = QueryLog([("common", "mid", "rare")])
        problem = build_placement_problem(index, log, 2)
        # two smallest of (rare=1, mid=3, common=5) -> (rare, mid).
        assert problem.num_pairs == 1
        pair = next(problem.pairs())
        ids = {problem.object_ids[pair.i], problem.object_ids[pair.j]}
        assert ids == {"rare", "mid"}

    def test_cooccurrence_mode(self, index):
        log = QueryLog([("common", "mid", "rare")])
        problem = build_placement_problem(index, log, 2, correlation_mode="cooccurrence")
        assert problem.num_pairs == 3

    def test_union_mode(self, index):
        log = QueryLog([("common", "mid", "rare")])
        problem = build_placement_problem(index, log, 2, correlation_mode="union_largest")
        assert problem.num_pairs == 2  # common paired with each other word

    def test_min_support(self, index):
        log = QueryLog([("common", "rare")] * 3 + [("mid", "other")])
        problem = build_placement_problem(index, log, 2, min_support=2)
        assert problem.num_pairs == 1

    def test_unknown_mode_rejected(self, index):
        with pytest.raises(ValueError, match="unknown correlation mode"):
            build_placement_problem(index, QueryLog(), 2, correlation_mode="bogus")
