"""Tests for the strategy comparison harness (repro.analysis.comparison)."""

import pytest

from repro.analysis.comparison import ComparisonResult, compare_strategies
from repro.core.problem import PlacementProblem


@pytest.fixture
def problem():
    # "e" hashes to node 0 while a-d hash to node 1, so the hash
    # baseline splits (a, e) and pays a nonzero cost.
    return PlacementProblem.build(
        objects={"a": 1.0, "b": 1.0, "c": 1.0, "d": 1.0, "e": 1.0},
        nodes={0: 4.0, 1: 4.0},
        correlations={("a", "e"): 0.8, ("c", "d"): 0.6},
    )


class TestCompareStrategies:
    def test_default_runs_paper_trio(self, problem):
        result = compare_strategies(problem)
        assert [o.name for o in result.outcomes] == ["hash", "greedy", "lprr"]
        assert result.baseline == "hash"

    def test_baseline_normalized_to_one(self, problem):
        result = compare_strategies(problem)
        assert result.outcomes[0].normalized == pytest.approx(1.0)

    def test_aware_strategies_beat_hash(self, problem):
        result = compare_strategies(problem)
        hash_cost = result.outcome("hash").cost
        assert result.outcome("lprr").cost <= hash_cost
        assert result.best().cost <= hash_cost

    def test_registry_names_accepted(self, problem):
        result = compare_strategies(problem, ["hash", "local_search"])
        assert {o.name for o in result.outcomes} == {"hash", "local_search"}

    def test_custom_callables(self, problem):
        from repro.core.hashing import random_hash_placement
        from repro.core.strategies import round_robin_placement

        result = compare_strategies(
            problem,
            {"rr": round_robin_placement, "hash": random_hash_placement},
        )
        assert result.baseline == "rr"

    def test_custom_cost_function(self, problem):
        # Score by load imbalance instead of communication.
        result = compare_strategies(
            problem,
            ["hash", "greedy"],
            cost=lambda p: p.load_imbalance(),
        )
        assert all(o.cost >= 1.0 or o.cost == 0.0 for o in result.outcomes)

    def test_zero_baseline_normalization(self, problem):
        result = compare_strategies(problem, ["greedy"], cost=lambda p: 0.0)
        assert result.outcomes[0].normalized == 0.0

    def test_render_table(self, problem):
        text = compare_strategies(problem).render()
        assert "vs hash" in text
        assert "lprr" in text

    def test_unknown_outcome_lookup(self, problem):
        result = compare_strategies(problem, ["hash"])
        with pytest.raises(KeyError):
            result.outcome("ghost")

    def test_empty_strategies_rejected(self, problem):
        with pytest.raises(ValueError):
            compare_strategies(problem, {})
