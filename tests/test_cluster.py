"""Tests for the cluster substrate (repro.cluster)."""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.network import NetworkModel
from repro.cluster.node import StorageNode
from repro.core.placement import Placement
from repro.core.problem import PlacementProblem
from repro.exceptions import PlacementError


class TestStorageNode:
    def test_store_and_evict(self):
        node = StorageNode("n", capacity=10.0)
        node.store("a", 4.0)
        assert node.used == 4.0
        assert node.free == 6.0
        assert node.holds("a")
        assert node.evict("a") == 4.0
        assert not node.holds("a")

    def test_duplicate_store_rejected(self):
        node = StorageNode("n")
        node.store("a", 1.0)
        with pytest.raises(PlacementError, match="already"):
            node.store("a", 1.0)

    def test_evict_missing_rejected(self):
        with pytest.raises(PlacementError, match="not on node"):
            StorageNode("n").evict("ghost")

    def test_soft_overflow_tracked(self):
        node = StorageNode("n", capacity=2.0)
        node.store("big", 5.0)
        assert node.is_overloaded
        assert node.free == -3.0

    def test_enforced_overflow_raises(self):
        node = StorageNode("n", capacity=2.0, enforce_capacity=True)
        with pytest.raises(PlacementError, match="cannot fit"):
            node.store("big", 5.0)

    def test_size_of(self):
        node = StorageNode("n")
        node.store("a", 3.0)
        assert node.size_of("a") == 3.0
        with pytest.raises(PlacementError):
            node.size_of("b")

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            StorageNode("n", capacity=-1.0)

    def test_objects_in_insertion_order(self):
        node = StorageNode("n")
        node.store("b", 1.0)
        node.store("a", 1.0)
        assert node.objects() == ["b", "a"]


class TestNetworkModel:
    def test_transfer_accounting(self):
        net = NetworkModel(["x", "y", "z"])
        assert net.transfer("x", "y", 100) == 100
        assert net.total_bytes == 100
        assert net.total_messages == 1
        assert net.bytes_between("x", "y") == 100
        assert net.bytes_sent_by("x") == 100
        assert net.bytes_sent_by("y") == 0

    def test_self_transfer_free(self):
        net = NetworkModel(["x", "y"])
        assert net.transfer("x", "x", 500) == 0
        assert net.total_bytes == 0

    def test_bidirectional_link_sum(self):
        net = NetworkModel(["x", "y"])
        net.transfer("x", "y", 10)
        net.transfer("y", "x", 5)
        assert net.bytes_between("x", "y") == 15

    def test_traffic_matrix_copy(self):
        net = NetworkModel(["x", "y"])
        net.transfer("x", "y", 7)
        matrix = net.traffic_matrix()
        matrix[:] = 0
        assert net.total_bytes == 7  # copy, not a view

    def test_reset(self):
        net = NetworkModel(["x", "y"])
        net.transfer("x", "y", 7)
        net.reset()
        assert net.total_bytes == 0

    def test_negative_bytes_rejected(self):
        net = NetworkModel(["x", "y"])
        with pytest.raises(ValueError):
            net.transfer("x", "y", -1)

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            NetworkModel(["x", "x"])


@pytest.fixture
def cluster():
    problem = PlacementProblem.build(
        objects={"s": 10.0, "m": 20.0, "l": 40.0, "x": 5.0},
        nodes={"n0": 100.0, "n1": 100.0},
        correlations={("s", "m"): 0.5},
    )
    placement = Placement.from_mapping(
        problem, {"s": "n0", "m": "n0", "l": "n1", "x": "n1"}
    )
    return Cluster(placement)


class TestCluster:
    def test_materializes_placement(self, cluster):
        assert cluster.locate("s") == "n0"
        assert cluster.nodes["n0"].used == 30.0
        assert cluster.nodes["n1"].used == 45.0

    def test_local_intersection_free(self, cluster):
        result = cluster.execute_intersection(["s", "m"])
        assert result.is_local
        assert result.bytes_transferred == 0

    def test_remote_intersection_ships_running_result(self, cluster):
        # s (10) smallest: ship to l's node; bound stays at min size.
        result = cluster.execute_intersection(["s", "l"])
        assert result.bytes_transferred == 10.0
        assert result.coordinator == "n1"
        assert result.num_remote_objects == 1

    def test_three_way_intersection_pipelines(self, cluster):
        # sizes: x(5)@n1, s(10)@n0, m(20)@n0 -> start at n1,
        # ship 5 to n0 for s, then m is local.
        result = cluster.execute_intersection(["s", "m", "x"])
        assert result.bytes_transferred == 5.0
        assert result.coordinator == "n0"

    def test_union_ships_to_largest(self, cluster):
        # l (40) on n1 is largest; s and m (30 bytes total) move there.
        result = cluster.execute_union(["s", "m", "l"])
        assert result.bytes_transferred == 30.0
        assert result.coordinator == "n1"

    def test_union_local(self, cluster):
        assert cluster.execute_union(["l", "x"]).is_local

    def test_trace_execution_accumulates_network(self, cluster):
        results = cluster.execute_trace([("s", "l"), ("s", "m")], mode="intersection")
        assert len(results) == 2
        assert cluster.network.total_bytes == 10

    def test_unknown_mode_rejected(self, cluster):
        with pytest.raises(ValueError, match="unknown operation mode"):
            cluster.execute_trace([], mode="bogus")

    def test_empty_operation_rejected(self, cluster):
        with pytest.raises(ValueError, match="no objects"):
            cluster.execute_intersection([])

    def test_unknown_object_rejected(self, cluster):
        with pytest.raises(PlacementError, match="unknown object"):
            cluster.execute_intersection(["ghost"])

    def test_migrate_moves_and_charges(self, cluster):
        moved = cluster.migrate("s", "n1")
        assert moved == 10.0
        assert cluster.locate("s") == "n1"
        assert cluster.nodes["n0"].used == 20.0
        # Intersection with m is now remote.
        assert not cluster.execute_intersection(["s", "m"]).is_local

    def test_migrate_to_same_node_free(self, cluster):
        assert cluster.migrate("s", "n0") == 0.0

    def test_overloaded_nodes_empty_when_fitting(self, cluster):
        assert cluster.overloaded_nodes() == []

    def test_overloaded_detection(self):
        problem = PlacementProblem.build(
            {"big": 50.0}, {"n0": 10.0, "n1": 10.0}, {}
        )
        placement = Placement(problem, np.array([0]))
        cluster = Cluster(placement)
        assert cluster.overloaded_nodes() == ["n0"]
