"""Tests for the first-order backend (repro.lpsolve.firstorder).

The vectorized simplex projection is property-tested against a scalar
loop oracle; the solver itself is checked for feasibility, byte-level
reproducibility, bounded cost against the HiGHS LPRR pipeline, and the
warm-start fast path that powers cheap online replans.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lp import WarmStart
from repro.core.problem import PlacementProblem
from repro.core.strategies import PlanConfig, plan
from repro.gap import gap_instance
from repro.lpsolve.firstorder import (
    FirstOrderOptions,
    _project_row_simplex_loop,
    project_rows_to_simplex,
    solve_first_order,
)


def _solver_inputs(problem):
    """Unpack a PlacementProblem into solve_first_order arguments."""
    return (
        problem.sizes,
        problem.capacities,
        problem.pair_index,
        problem.pair_weights,
        problem.num_nodes,
    )


class TestSimplexProjection:
    @settings(max_examples=50, deadline=None)
    @given(
        seed=st.integers(0, 100_000),
        rows=st.integers(1, 8),
        cols=st.integers(1, 6),
    )
    def test_matches_loop_oracle(self, seed, rows, cols):
        rng = np.random.default_rng(seed)
        matrix = rng.normal(scale=3.0, size=(rows, cols))
        fast = project_rows_to_simplex(matrix)
        for i in range(rows):
            slow = _project_row_simplex_loop(matrix[i])
            np.testing.assert_allclose(fast[i], slow, atol=1e-12)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_output_is_on_simplex(self, seed):
        rng = np.random.default_rng(seed)
        projected = project_rows_to_simplex(rng.normal(size=(6, 4)) * 10)
        assert (projected >= 0).all()
        np.testing.assert_allclose(projected.sum(axis=1), 1.0, atol=1e-9)

    def test_already_on_simplex_is_fixed_point(self):
        x = np.array([[0.2, 0.3, 0.5], [1.0, 0.0, 0.0]])
        np.testing.assert_allclose(project_rows_to_simplex(x), x, atol=1e-12)

    def test_rejects_non_matrix(self):
        with pytest.raises(ValueError, match="2-D"):
            project_rows_to_simplex(np.zeros(3))


class TestOptionsValidation:
    def test_defaults_valid(self):
        FirstOrderOptions()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_iterations": 0},
            {"check_every": 0},
            {"tolerance": -1.0},
            {"damping": 0.0},
            {"damping": 1.5},
            {"cool_fraction": 0.0},
            {"temperature_min": 0.0},
            {"temperature": 0.001, "temperature_min": 0.01},
        ],
    )
    def test_bad_options_raise(self, kwargs):
        with pytest.raises(ValueError):
            FirstOrderOptions(**kwargs)


class TestSolveFirstOrder:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 50_000))
    def test_rows_stay_on_simplex(self, seed):
        problem = gap_instance(seed, 0, objects=10, nodes=3)
        solution = solve_first_order(*_solver_inputs(problem))
        assert solution.fractions.shape == (10, 3)
        assert (solution.fractions >= 0).all()
        np.testing.assert_allclose(
            solution.fractions.sum(axis=1), 1.0, atol=1e-9
        )
        assert solution.objective >= -1e-9

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 50_000))
    def test_byte_reproducible(self, seed):
        problem = gap_instance(seed, 1, objects=10, nodes=3)
        first = solve_first_order(*_solver_inputs(problem))
        second = solve_first_order(*_solver_inputs(problem))
        assert first.fractions.tobytes() == second.fractions.tobytes()
        assert first.iterations == second.iterations
        assert first.objective == second.objective

    def test_no_pairs_short_circuits(self):
        problem = PlacementProblem.build(
            {"a": 1.0, "b": 1.0}, 2, {}
        )
        solution = solve_first_order(*_solver_inputs(problem))
        assert solution.iterations == 0
        assert solution.converged
        assert solution.objective == 0.0

    def test_clustered_instance_colocates(self):
        # Two tight clusters, two nodes with room for one cluster each:
        # the annealed solve should find the zero-cost split.
        problem = PlacementProblem.build(
            {"a": 1.0, "b": 1.0, "c": 1.0, "d": 1.0},
            {0: 2.0, 1: 2.0},
            {("a", "b"): 5.0, ("c", "d"): 5.0},
        )
        solution = solve_first_order(*_solver_inputs(problem))
        assignment = np.argmax(solution.fractions, axis=1)
        assert assignment[0] == assignment[1]
        assert assignment[2] == assignment[3]
        assert assignment[0] != assignment[2]

    def test_bad_x0_shape_rejected(self):
        problem = gap_instance(0, 0, objects=8, nodes=3)
        with pytest.raises(ValueError, match="shape"):
            solve_first_order(
                *_solver_inputs(problem), x0=np.full((2, 2), 0.5)
            )


class TestPlannerEquivalence:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 20_000))
    def test_fo_plans_are_feasible(self, seed):
        problem = gap_instance(seed, 2, objects=12, nodes=3)
        # capacity_factor=None plans against the instance's real caps
        # instead of the conservative 2x-average default.
        result = plan(
            problem, "lprr:fo", PlanConfig(seed=seed, capacity_factor=None)
        )
        assert result.placement.is_feasible(tolerance=0.05)
        assert result.planner == "lprr:fo"
        assert result.diagnostics["fo_iterations"] >= 1

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 20_000))
    def test_fo_cost_tracks_lprr(self, seed):
        # On small clustered instances the annealed solve should land
        # within a generous factor of the HiGHS LPRR pipeline; exact
        # parity is measured by the gap harness, not asserted here.
        problem = gap_instance(seed, 3, objects=12, nodes=3)
        config = PlanConfig(seed=seed)
        lprr_cost = plan(problem, "lprr", config).cost
        fo_cost = plan(problem, "lprr:fo", config).cost
        total = float(np.sum(problem.pair_weights))
        assert fo_cost <= lprr_cost + 0.5 * total

    def test_planner_deterministic(self):
        problem = gap_instance(7, 4, objects=12, nodes=3)
        config = PlanConfig(seed=7)
        first = plan(problem, "lprr:fo", config)
        second = plan(problem, "lprr:fo", config)
        assert np.array_equal(
            first.placement.assignment, second.placement.assignment
        )
        assert first.cost == second.cost


class TestWarmStart:
    def test_warm_solve_converges_faster(self):
        problem = gap_instance(3, 5, objects=16, nodes=4)
        cold = solve_first_order(*_solver_inputs(problem))
        warm = solve_first_order(
            *_solver_inputs(problem), x0=cold.fractions, warm=True
        )
        assert warm.iterations < cold.iterations
        assert warm.objective <= cold.objective + 1e-6

    def test_planner_warm_start_hit(self):
        problem = gap_instance(11, 6, objects=16, nodes=4)
        config = PlanConfig(seed=11, capacity_factor=None)
        cold = plan(problem, "lprr:fo", config)
        assert cold.fractional is not None
        assert cold.diagnostics["warm_start"] == "off"
        warm_start = WarmStart.from_fractional(cold.fractional)
        warm = plan(
            problem, "lprr:fo", config.with_options(warm_start=warm_start)
        )
        assert warm.diagnostics["warm_start"] == "hit"
        assert warm.diagnostics["warm_hits"] == problem.num_objects
        assert (
            warm.diagnostics["fo_iterations"]
            <= cold.diagnostics["fo_iterations"]
        )
        assert warm.placement.is_feasible(tolerance=0.05)

    def test_warm_start_survives_object_churn(self):
        base = gap_instance(5, 7, objects=12, nodes=3)
        cold = plan(base, "lprr:fo", PlanConfig(seed=5))
        warm_start = WarmStart.from_fractional(cold.fractional)
        # A different instance over the same nodes but a partially
        # disjoint object set: matched objects hit, the rest miss.
        x0, hits = warm_start.matrix(base)
        assert hits == base.num_objects
        assert x0.shape == (base.num_objects, base.num_nodes)
        np.testing.assert_allclose(x0.sum(axis=1), 1.0, atol=1e-9)

    def test_disjoint_nodes_cold_start(self):
        base = gap_instance(5, 8, objects=10, nodes=3)
        cold = plan(base, "lprr:fo", PlanConfig(seed=5))
        warm_start = WarmStart.from_fractional(cold.fractional)
        other = PlacementProblem.build(
            {f"x{i}": 1.0 for i in range(4)},
            {"other-a": 10.0, "other-b": 10.0},
            {("x0", "x1"): 1.0},
        )
        x0, hits = warm_start.matrix(other)
        assert x0 is None
        assert hits == 0
