"""Tests for the CCA problem model (repro.core.problem)."""

import numpy as np
import pytest

from repro.core.problem import (
    PlacementProblem,
    min_size_pair_cost,
    sum_size_pair_cost,
    unit_pair_cost,
)
from repro.exceptions import ProblemDefinitionError


@pytest.fixture
def small_problem():
    return PlacementProblem.build(
        objects={"a": 4.0, "b": 3.0, "c": 5.0, "d": 2.0},
        nodes={"n0": 8.0, "n1": 8.0},
        correlations={("a", "b"): 0.3, ("c", "d"): 0.25, ("a", "c"): 0.1},
    )


class TestConstruction:
    def test_counts(self, small_problem):
        assert small_problem.num_objects == 4
        assert small_problem.num_nodes == 2
        assert small_problem.num_pairs == 3

    def test_total_size_and_capacity(self, small_problem):
        assert small_problem.total_size == pytest.approx(14.0)
        assert small_problem.total_capacity == pytest.approx(16.0)

    def test_int_nodes_shorthand_is_uncapacitated(self):
        p = PlacementProblem.build({"a": 1.0}, 3, {})
        assert p.num_nodes == 3
        assert np.all(np.isinf(p.capacities))

    def test_default_pair_cost_is_min_size(self, small_problem):
        i = small_problem.object_index("a")
        j = small_problem.object_index("b")
        for pair in small_problem.pairs():
            if (pair.i, pair.j) == (min(i, j), max(i, j)):
                assert pair.cost == pytest.approx(3.0)  # min(4, 3)

    def test_callable_pair_cost(self):
        p = PlacementProblem.build(
            {"a": 2.0, "b": 6.0}, 2, {("a", "b"): 1.0}, pair_cost=sum_size_pair_cost
        )
        assert p.pair_costs[0] == pytest.approx(8.0)

    def test_unit_pair_cost(self):
        p = PlacementProblem.build(
            {"a": 2.0, "b": 6.0}, 2, {("a", "b"): 0.5}, pair_cost=unit_pair_cost
        )
        assert p.pair_weights[0] == pytest.approx(0.5)

    def test_explicit_pair_cost_mapping(self):
        p = PlacementProblem.build(
            {"a": 1.0, "b": 1.0},
            2,
            {("a", "b"): 0.5},
            pair_cost={("b", "a"): 7.0},  # mirrored key is canonicalized
        )
        assert p.pair_costs[0] == pytest.approx(7.0)

    def test_mirrored_correlations_are_summed(self):
        p = PlacementProblem.build(
            {"a": 1.0, "b": 1.0}, 2, {("a", "b"): 0.2, ("b", "a"): 0.3}
        )
        assert p.num_pairs == 1
        assert p.correlations[0] == pytest.approx(0.5)

    def test_pair_weights(self, small_problem):
        assert small_problem.total_pair_weight == pytest.approx(
            0.3 * 3.0 + 0.25 * 2.0 + 0.1 * 4.0
        )


class TestValidation:
    def test_unknown_object_in_correlation(self):
        with pytest.raises(ProblemDefinitionError, match="unknown object"):
            PlacementProblem.build({"a": 1.0}, 2, {("a", "zzz"): 0.5})

    def test_self_correlation_rejected(self):
        with pytest.raises(ProblemDefinitionError, match="self-correlation"):
            PlacementProblem.build({"a": 1.0}, 2, {("a", "a"): 0.5})

    def test_nonpositive_size_rejected(self):
        with pytest.raises(ProblemDefinitionError, match="positive"):
            PlacementProblem.build({"a": 0.0}, 2, {})

    def test_negative_capacity_rejected(self):
        with pytest.raises(ProblemDefinitionError, match="capacities"):
            PlacementProblem.build({"a": 1.0}, {"n": -1.0}, {})

    def test_zero_nodes_rejected(self):
        with pytest.raises(ProblemDefinitionError, match="at least one node"):
            PlacementProblem.build({"a": 1.0}, {}, {})

    def test_negative_correlation_rejected(self):
        with pytest.raises(ProblemDefinitionError, match="nonnegative"):
            PlacementProblem.build({"a": 1.0, "b": 1.0}, 2, {("a", "b"): -0.1})

    def test_missing_explicit_pair_cost(self):
        with pytest.raises(ProblemDefinitionError, match="missing explicit pair cost"):
            PlacementProblem.build(
                {"a": 1.0, "b": 1.0}, 2, {("a", "b"): 0.5}, pair_cost={}
            )

    def test_trivially_infeasible_detection(self):
        p = PlacementProblem.build({"a": 5.0, "b": 5.0}, {"n": 6.0}, {})
        assert p.is_trivially_infeasible()

    def test_lookup_errors(self, small_problem):
        with pytest.raises(ProblemDefinitionError, match="unknown object"):
            small_problem.object_index("zzz")
        with pytest.raises(ProblemDefinitionError, match="unknown node"):
            small_problem.node_index("zzz")


class TestSubproblem:
    def test_subproblem_keeps_internal_pairs(self, small_problem):
        sub = small_problem.subproblem(["a", "b"])
        assert sub.num_objects == 2
        assert sub.num_pairs == 1
        assert sub.correlations[0] == pytest.approx(0.3)

    def test_subproblem_drops_cross_pairs(self, small_problem):
        sub = small_problem.subproblem(["a", "d"])
        assert sub.num_pairs == 0  # (a,b), (c,d), (a,c) all cross the cut

    def test_subproblem_recanonicalizes_order(self, small_problem):
        # Reversed subset order flips indices; pairs must stay i < j.
        sub = small_problem.subproblem(["b", "a"])
        assert sub.num_pairs == 1
        i, j = sub.pair_index[0]
        assert i < j

    def test_subproblem_capacity_override(self, small_problem):
        sub = small_problem.subproblem(["a"], capacities=np.array([1.0, 2.0]))
        assert sub.capacities.tolist() == [1.0, 2.0]

    def test_subproblem_duplicate_rejected(self, small_problem):
        with pytest.raises(ProblemDefinitionError, match="duplicates"):
            small_problem.subproblem(["a", "a"])

    def test_with_capacities_scalar(self, small_problem):
        p = small_problem.with_capacities(100.0)
        assert p.capacities.tolist() == [100.0, 100.0]

    def test_subproblem_preserves_sizes(self, small_problem):
        sub = small_problem.subproblem(["c", "d"])
        assert sub.size_of("c") == pytest.approx(5.0)
        assert sub.size_of("d") == pytest.approx(2.0)
