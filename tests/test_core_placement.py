"""Tests for placements and cost evaluation (repro.core.placement)."""

import numpy as np
import pytest

from repro.core.placement import Placement
from repro.core.problem import PlacementProblem
from repro.exceptions import PlacementError


@pytest.fixture
def problem():
    return PlacementProblem.build(
        objects={"a": 4.0, "b": 3.0, "c": 5.0, "d": 2.0},
        nodes={"n0": 8.0, "n1": 8.0},
        correlations={("a", "b"): 0.3, ("c", "d"): 0.25, ("a", "c"): 0.1},
    )


class TestConstruction:
    def test_from_mapping_round_trip(self, problem):
        mapping = {"a": "n0", "b": "n0", "c": "n1", "d": "n1"}
        placement = Placement.from_mapping(problem, mapping)
        assert placement.to_mapping() == mapping

    def test_incomplete_mapping_rejected(self, problem):
        with pytest.raises(PlacementError, match="covers 2 of 4"):
            Placement.from_mapping(problem, {"a": "n0", "b": "n0"})

    def test_wrong_shape_rejected(self, problem):
        with pytest.raises(PlacementError, match="shape"):
            Placement(problem, np.zeros(3, dtype=np.int64))

    def test_out_of_range_rejected(self, problem):
        with pytest.raises(PlacementError, match="out-of-range"):
            Placement(problem, np.array([0, 0, 0, 5]))


class TestCost:
    def test_all_colocated_costs_nothing(self, problem):
        big = problem.with_capacities(100.0)
        placement = Placement(big, np.zeros(4, dtype=np.int64))
        assert placement.communication_cost() == 0.0
        assert placement.colocated_weight() == pytest.approx(big.total_pair_weight)

    def test_pairwise_split_cost(self, problem):
        # a,b on n0; c,d on n1 -> only (a,c) split: 0.1 * min(4,5) = 0.4.
        placement = Placement.from_mapping(
            problem, {"a": "n0", "b": "n0", "c": "n1", "d": "n1"}
        )
        assert placement.communication_cost() == pytest.approx(0.4)

    def test_worst_case_cost(self, problem):
        # a alone vs everything else split by hand: split all three pairs.
        placement = Placement.from_mapping(
            problem, {"a": "n0", "b": "n1", "c": "n1", "d": "n0"}
        )
        assert placement.communication_cost() == pytest.approx(
            0.3 * 3 + 0.25 * 2 + 0.1 * 4
        )

    def test_no_pairs_means_zero_cost(self):
        p = PlacementProblem.build({"a": 1.0, "b": 1.0}, 2, {})
        placement = Placement(p, np.array([0, 1]))
        assert placement.communication_cost() == 0.0


class TestCapacity:
    def test_loads(self, problem):
        placement = Placement.from_mapping(
            problem, {"a": "n0", "b": "n0", "c": "n1", "d": "n1"}
        )
        assert placement.node_loads().tolist() == [7.0, 7.0]
        assert placement.node_object_counts().tolist() == [2, 2]

    def test_feasible_placement(self, problem):
        placement = Placement.from_mapping(
            problem, {"a": "n0", "b": "n0", "c": "n1", "d": "n1"}
        )
        assert placement.is_feasible()
        assert placement.capacity_violations() == {}

    def test_violation_reported_with_excess(self, problem):
        placement = Placement.from_mapping(
            problem, {"a": "n0", "b": "n0", "c": "n0", "d": "n1"}
        )  # n0 load 12 > 8
        violations = placement.capacity_violations()
        assert violations == {"n0": pytest.approx(4.0)}
        assert not placement.is_feasible()

    def test_tolerance_softens_violation(self, problem):
        placement = Placement.from_mapping(
            problem, {"a": "n0", "b": "n0", "c": "n0", "d": "n1"}
        )
        assert placement.is_feasible(tolerance=0.5)  # 8 * 1.5 = 12 >= 12

    def test_load_imbalance(self, problem):
        placement = Placement.from_mapping(
            problem, {"a": "n0", "b": "n0", "c": "n0", "d": "n1"}
        )
        assert placement.load_imbalance() == pytest.approx(12.0 / 7.0)


class TestViews:
    def test_node_of_and_objects_on(self, problem):
        placement = Placement.from_mapping(
            problem, {"a": "n0", "b": "n0", "c": "n1", "d": "n1"}
        )
        assert placement.node_of("c") == "n1"
        assert sorted(placement.objects_on("n0")) == ["a", "b"]

    def test_equality(self, problem):
        p1 = Placement(problem, np.array([0, 0, 1, 1]))
        p2 = Placement(problem, np.array([0, 0, 1, 1]))
        p3 = Placement(problem, np.array([0, 1, 1, 1]))
        assert p1 == p2
        assert p1 != p3

    def test_repr_contains_cost(self, problem):
        placement = Placement(problem, np.array([0, 0, 1, 1]))
        assert "cost=" in repr(placement)
