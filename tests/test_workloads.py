"""Tests for workload generation (repro.workloads)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.correlation import cooccurrence_correlations
from repro.exceptions import TraceFormatError
from repro.workloads.corpus_gen import generate_corpus, word_name
from repro.workloads.query_gen import (
    LENGTH_DISTRIBUTION,
    QueryWorkloadModel,
    generate_query_log,
)
from repro.workloads.traces import load_operations, save_operations, split_periods
from repro.workloads.zipf import ZipfSampler, zipf_probabilities


class TestZipf:
    def test_probabilities_normalized(self):
        p = zipf_probabilities(100, 1.0)
        assert p.sum() == pytest.approx(1.0)
        assert np.all(np.diff(p) <= 0)

    def test_zero_exponent_uniform(self):
        p = zipf_probabilities(4, 0.0)
        assert np.allclose(p, 0.25)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            zipf_probabilities(0)
        with pytest.raises(ValueError):
            zipf_probabilities(5, -1.0)

    def test_sampler_respects_skew(self):
        sampler = ZipfSampler(50, 1.2, rng=0)
        draws = sampler.sample(20_000)
        counts = np.bincount(draws, minlength=50)
        assert counts[0] > counts[10] > counts[40]

    def test_sampler_range(self):
        sampler = ZipfSampler(10, 1.0, rng=1)
        draws = sampler.sample(1000)
        assert draws.min() >= 0 and draws.max() < 10

    def test_single_draw_is_int(self):
        sampler = ZipfSampler(10, 1.0, rng=2)
        assert isinstance(sampler.sample(), int)

    def test_sample_distinct(self):
        sampler = ZipfSampler(20, 1.0, rng=3)
        picks = sampler.sample_distinct(10)
        assert len(set(picks.tolist())) == 10

    def test_sample_distinct_full_support(self):
        sampler = ZipfSampler(5, 1.0, rng=4)
        picks = sampler.sample_distinct(5)
        assert sorted(picks.tolist()) == list(range(5))

    def test_sample_distinct_too_many(self):
        with pytest.raises(ValueError):
            ZipfSampler(3, 1.0, rng=0).sample_distinct(4)

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(1, 200), a=st.floats(0.0, 2.5))
    def test_property_probabilities_valid(self, n, a):
        p = zipf_probabilities(n, a)
        assert p.shape == (n,)
        assert np.all(p > 0)
        assert p.sum() == pytest.approx(1.0)


class TestCorpusGeneration:
    def test_basic_shape(self):
        corpus = generate_corpus(50, 200, words_per_doc=30, seed=0)
        assert len(corpus) == 50
        assert corpus.average_distinct_words() == pytest.approx(30, rel=0.3)

    def test_word_names_canonical(self):
        assert word_name(7) == "w000007"

    def test_vocabulary_within_bounds(self):
        corpus = generate_corpus(30, 100, words_per_doc=20, seed=1)
        for doc in corpus:
            for word in doc.words:
                assert 0 <= int(word[1:]) < 100

    def test_popular_words_more_frequent(self):
        corpus = generate_corpus(200, 500, words_per_doc=25, zipf_exponent=1.0, seed=2)
        df_top = corpus.document_frequency(word_name(0))
        df_tail = corpus.document_frequency(word_name(400))
        assert df_top > df_tail

    def test_deterministic_given_seed(self):
        a = generate_corpus(20, 50, words_per_doc=10, seed=7)
        b = generate_corpus(20, 50, words_per_doc=10, seed=7)
        for doc_a, doc_b in zip(a, b):
            assert doc_a.words == doc_b.words

    def test_empty_corpus(self):
        assert len(generate_corpus(0, 10, seed=0)) == 0

    def test_negative_documents_rejected(self):
        with pytest.raises(ValueError):
            generate_corpus(-1, 10)


class TestQueryGeneration:
    VOCAB = [f"w{i:03d}" for i in range(300)]

    def test_length_distribution_mean(self):
        expected = float(np.dot(np.arange(1, 7), LENGTH_DISTRIBUTION))
        assert expected == pytest.approx(2.54, abs=0.05)

    def test_generated_log_statistics(self):
        log = generate_query_log(self.VOCAB, 4000, num_topics=40, seed=0)
        assert len(log) == 4000
        assert log.average_keywords() == pytest.approx(2.54, abs=0.15)

    def test_queries_use_vocabulary(self):
        log = generate_query_log(self.VOCAB, 200, num_topics=20, seed=1)
        assert log.vocabulary() <= set(self.VOCAB)

    def test_no_duplicate_keywords_within_query(self):
        log = generate_query_log(self.VOCAB, 500, num_topics=20, seed=2)
        for q in log:
            assert len(set(q.keywords)) == len(q.keywords)

    def test_pair_correlations_are_skewed(self):
        model = QueryWorkloadModel(self.VOCAB, num_topics=50, seed=0)
        log = model.generate(20_000, rng=0)
        corr = cooccurrence_correlations(log.operations())
        probs = sorted(corr.values(), reverse=True)
        # Top pair should dominate the 200th pair by a large factor.
        assert probs[0] / probs[min(199, len(probs) - 1)] > 5

    def test_deterministic_given_seed(self):
        model = QueryWorkloadModel(self.VOCAB, num_topics=20, seed=3)
        a = model.generate(100, rng=5)
        b = model.generate(100, rng=5)
        assert [q.keywords for q in a] == [q.keywords for q in b]

    def test_validation(self):
        with pytest.raises(ValueError, match="non-empty"):
            QueryWorkloadModel([])
        with pytest.raises(ValueError, match="topic_size_range"):
            QueryWorkloadModel(self.VOCAB, topic_size_range=(1, 3))
        with pytest.raises(ValueError, match="topic_size_range"):
            QueryWorkloadModel(self.VOCAB, topic_size_range=(4, 2))


class TestDrift:
    VOCAB = [f"w{i:03d}" for i in range(200)]

    def test_drifted_model_shares_topics(self):
        model = QueryWorkloadModel(self.VOCAB, num_topics=30, seed=0)
        drifted = model.drifted(0.1, seed=1)
        assert all(
            a.keywords == b.keywords for a, b in zip(model.topics, drifted.topics)
        )

    def test_zero_drift_keeps_popularity_close(self):
        model = QueryWorkloadModel(self.VOCAB, num_topics=30, seed=0)
        drifted = model.drifted(0.0, seed=1)
        for a, b in zip(model.topics, drifted.topics):
            assert 0.5 < b.popularity / a.popularity < 2.0

    def test_full_drift_changes_popularity(self):
        model = QueryWorkloadModel(self.VOCAB, num_topics=30, seed=0)
        drifted = model.drifted(1.0, seed=1)
        ratios = [b.popularity / a.popularity for a, b in zip(model.topics, drifted.topics)]
        assert all(r < 0.5 or r > 2.0 for r in ratios)

    def test_invalid_fraction(self):
        model = QueryWorkloadModel(self.VOCAB, num_topics=5, seed=0)
        with pytest.raises(ValueError):
            model.drifted(1.5)


class TestTraceIO:
    def test_round_trip(self, tmp_path):
        ops = [("a", "b"), ("c",), ("d", "e", "f")]
        path = tmp_path / "ops.tsv"
        assert save_operations(path, ops) == 3
        assert load_operations(path) == ops

    def test_separator_in_id_rejected(self, tmp_path):
        with pytest.raises(TraceFormatError, match="separator"):
            save_operations(tmp_path / "x.tsv", [("a\tb",)])

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(TraceFormatError, match="cannot read"):
            load_operations(tmp_path / "missing.tsv")

    def test_split_periods_even(self):
        ops = [(str(i),) for i in range(10)]
        periods = split_periods(ops, 2)
        assert [len(p) for p in periods] == [5, 5]
        assert periods[0][0] == ("0",)

    def test_split_periods_remainder_to_last(self):
        ops = [(str(i),) for i in range(10)]
        periods = split_periods(ops, 3)
        assert [len(p) for p in periods] == [3, 3, 4]

    def test_split_invalid(self):
        with pytest.raises(ValueError):
            split_periods([], 0)
