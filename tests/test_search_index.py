"""Tests for documents and inverted indices (repro.search)."""

import numpy as np
import pytest

from repro.search.documents import Corpus, Document
from repro.search.index import ITEM_BYTES, InvertedIndex, page_id


@pytest.fixture
def corpus():
    return Corpus(
        [
            Document("url/1", frozenset({"car", "dealer", "price"})),
            Document("url/2", frozenset({"car", "software"})),
            Document("url/3", frozenset({"software", "download"})),
            Document("url/4", frozenset({"car", "dealer"})),
        ]
    )


@pytest.fixture
def index(corpus):
    return InvertedIndex.from_corpus(corpus)


class TestDocuments:
    def test_from_text_tokenizes(self):
        doc = Document.from_text("u", "The Quick Fox quick")
        assert doc.words == frozenset({"quick", "fox"})

    def test_contains(self):
        doc = Document("u", frozenset({"a"}))
        assert doc.contains("a") and not doc.contains("b")

    def test_corpus_membership(self, corpus):
        assert "url/1" in corpus
        assert "url/9" not in corpus
        assert len(corpus) == 4

    def test_corpus_replace(self, corpus):
        corpus.add(Document("url/1", frozenset({"new"})))
        assert corpus.get("url/1").words == frozenset({"new"})
        assert len(corpus) == 4

    def test_vocabulary(self, corpus):
        assert corpus.vocabulary == {"car", "dealer", "price", "software", "download"}

    def test_document_frequency(self, corpus):
        assert corpus.document_frequency("car") == 3
        assert corpus.document_frequency("download") == 1
        assert corpus.document_frequency("missing") == 0

    def test_average_distinct_words(self, corpus):
        assert corpus.average_distinct_words() == pytest.approx((3 + 2 + 2 + 2) / 4)

    def test_empty_corpus_average(self):
        assert Corpus().average_distinct_words() == 0.0


class TestPageId:
    def test_deterministic(self):
        assert page_id("http://a.example/") == page_id("http://a.example/")

    def test_eight_bytes(self):
        assert 0 <= page_id("anything") < 2**64

    def test_distinct_urls_distinct_ids(self):
        ids = {page_id(f"url/{i}") for i in range(1000)}
        assert len(ids) == 1000  # 64-bit space: collisions essentially impossible


class TestInvertedIndex:
    def test_document_frequencies(self, index):
        assert index.document_frequency("car") == 3
        assert index.document_frequency("download") == 1
        assert index.document_frequency("missing") == 0

    def test_size_accounting(self, index):
        assert index.size_bytes("car") == 3 * ITEM_BYTES
        sizes = index.sizes_bytes()
        assert sizes["dealer"] == 2 * ITEM_BYTES
        assert index.total_bytes == sum(sizes.values())

    def test_postings_sorted_unique(self, index):
        postings = index.postings("car")
        assert postings.dtype == np.uint64
        assert np.all(np.diff(postings.astype(np.int64)) > 0)

    def test_postings_match_page_ids(self, index):
        expected = sorted(page_id(u) for u in ("url/1", "url/2", "url/4"))
        assert index.postings("car").tolist() == expected

    def test_vocabulary_sorted(self, index):
        assert index.vocabulary == sorted(index.vocabulary)
        assert "car" in index

    def test_intersect_two_words(self, index):
        result = index.intersect(["car", "dealer"])
        assert sorted(result.tolist()) == sorted(page_id(u) for u in ("url/1", "url/4"))

    def test_intersect_three_words(self, index):
        result = index.intersect(["car", "dealer", "price"])
        assert result.tolist() == [page_id("url/1")]

    def test_intersect_disjoint(self, index):
        assert index.intersect(["price", "download"]).size == 0

    def test_intersect_unknown_word_empty(self, index):
        assert index.intersect(["car", "zzz"]).size == 0

    def test_intersect_single_word(self, index):
        assert index.intersect(["download"]).tolist() == [page_id("url/3")]

    def test_intersect_empty_query(self, index):
        assert index.intersect([]).size == 0

    def test_union(self, index):
        result = index.union(["price", "download"])
        assert sorted(result.tolist()) == sorted(page_id(u) for u in ("url/1", "url/3"))

    def test_explicit_postings_constructor(self):
        idx = InvertedIndex({"w": np.array([5, 3, 5], dtype=np.uint64)})
        assert idx.postings("w").tolist() == [3, 5]

    def test_duplicate_words_in_query_deduped(self, index):
        a = index.intersect(["car", "car", "dealer"])
        b = index.intersect(["car", "dealer"])
        assert a.tolist() == b.tolist()
