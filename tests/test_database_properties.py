"""Property-based tests for the database substrate (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.database.engine import DistributedDatabase
from repro.database.queries import AggregateQuery, JoinQuery
from repro.database.table import Table


def brute_force_join_count(left_keys, right_keys):
    return sum(1 for a in left_keys for b in right_keys if a == b)


@st.composite
def key_arrays(draw, max_rows=12, key_range=6):
    rows = draw(st.integers(0, max_rows))
    return draw(
        st.lists(
            st.integers(0, key_range - 1), min_size=rows, max_size=rows
        )
    )


class TestJoinProperties:
    @settings(max_examples=60, deadline=None)
    @given(left=key_arrays(), right=key_arrays())
    def test_join_row_count_matches_brute_force(self, left, right):
        a = Table("a", {"key": np.asarray(left, dtype=np.int64)})
        b = Table("b", {"key": np.asarray(right, dtype=np.int64)})
        joined = a.join(b, on="key")
        assert joined.num_rows == brute_force_join_count(left, right)

    @settings(max_examples=40, deadline=None)
    @given(left=key_arrays(), right=key_arrays())
    def test_join_commutative_in_count(self, left, right):
        a = Table("a", {"key": np.asarray(left, dtype=np.int64)})
        b = Table("b", {"key": np.asarray(right, dtype=np.int64)})
        assert a.join(b, on="key").num_rows == b.join(a, on="key").num_rows

    @settings(max_examples=40, deadline=None)
    @given(keys=key_arrays())
    def test_self_join_at_least_rows(self, keys):
        t = Table("t", {"key": np.asarray(keys, dtype=np.int64)})
        other = Table("o", {"key": np.asarray(keys, dtype=np.int64)})
        # Every row matches itself at minimum.
        assert t.join(other, on="key").num_rows >= t.num_rows


class TestExecutionProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        left=key_arrays(max_rows=8),
        right=key_arrays(max_rows=8),
        seed=st.integers(0, 100),
    )
    def test_join_value_placement_invariant(self, left, right, seed):
        """Query answers never depend on where tables live."""
        rng = np.random.default_rng(seed)
        a = Table(
            "a",
            {
                "key": np.asarray(left, dtype=np.int64),
                "value": rng.integers(0, 50, len(left)),
            },
        )
        b = Table("b", {"key": np.asarray(right, dtype=np.int64)})
        query = JoinQuery(("a", "b"), on="key", aggregate_column="value")
        results = set()
        for mapping in ({"a": 0, "b": 0}, {"a": 0, "b": 1}, {"a": 1, "b": 0}):
            engine = DistributedDatabase([a, b], mapping)
            outcome = engine.execute_join(query)
            results.add((outcome.value, outcome.rows))
        assert len(results) == 1

    @settings(max_examples=30, deadline=None)
    @given(values=st.lists(st.integers(0, 100), min_size=0, max_size=10))
    def test_aggregate_sum_matches_numpy(self, values):
        t = Table("t", {"value": np.asarray(values, dtype=np.int64)})
        engine = DistributedDatabase([t], {"t": 0})
        outcome = engine.execute_aggregate(AggregateQuery(("t",), "value", "sum"))
        assert outcome.value == float(sum(values))

    @settings(max_examples=20, deadline=None)
    @given(
        left=key_arrays(max_rows=6),
        mid=key_arrays(max_rows=6),
        right=key_arrays(max_rows=6),
    )
    def test_three_way_join_count_placement_invariant(self, left, mid, right):
        tables = [
            Table("l", {"key": np.asarray(left, dtype=np.int64)}),
            Table("m", {"key": np.asarray(mid, dtype=np.int64)}),
            Table("r", {"key": np.asarray(right, dtype=np.int64)}),
        ]
        query = JoinQuery(("l", "m", "r"), on="key")
        counts = set()
        for mapping in ({"l": 0, "m": 0, "r": 0}, {"l": 0, "m": 1, "r": 2}):
            engine = DistributedDatabase(tables, mapping)
            counts.add(engine.execute_join(query).rows)
        assert len(counts) == 1
