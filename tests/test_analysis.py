"""Tests for the analysis subpackage (skewness, stability, dominance, reporting)."""

import pytest

from repro.analysis.dominance import dominance_curves
from repro.analysis.reporting import format_series, format_table, normalize_to
from repro.analysis.skewness import pair_probability_curve, skew_ratio
from repro.analysis.stability import stability_report
from repro.core.problem import PlacementProblem


class TestSkewness:
    CORR = {("a", "b"): 0.5, ("c", "d"): 0.1, ("e", "f"): 0.01}

    def test_curve_sorted_descending(self):
        pairs, probs = pair_probability_curve(self.CORR)
        assert probs == [0.5, 0.1, 0.01]
        assert pairs[0] == ("a", "b")

    def test_top_k(self):
        _, probs = pair_probability_curve(self.CORR, top_k=2)
        assert probs == [0.5, 0.1]

    def test_skew_ratio(self):
        _, probs = pair_probability_curve(self.CORR)
        assert skew_ratio(probs) == pytest.approx(50.0)

    def test_skew_ratio_edge_cases(self):
        import math

        assert math.isnan(skew_ratio([]))
        assert skew_ratio([0.5, 0.0]) == float("inf")
        assert skew_ratio([0.3]) == 1.0

    def test_ties_deterministic(self):
        corr = {("x", "y"): 0.5, ("a", "b"): 0.5}
        pairs1, _ = pair_probability_curve(corr)
        pairs2, _ = pair_probability_curve(dict(reversed(list(corr.items()))))
        assert pairs1 == pairs2


class TestStability:
    def test_stable_periods(self):
        ref = {("a", "b"): 0.4, ("c", "d"): 0.2}
        cmp_ = {("a", "b"): 0.41, ("c", "d"): 0.19}
        report = stability_report(ref, cmp_, top_k=10)
        assert report.unstable_fraction == 0.0
        assert report.stable_fraction == 1.0

    def test_doubling_counts_unstable(self):
        ref = {("a", "b"): 0.1, ("c", "d"): 0.1}
        cmp_ = {("a", "b"): 0.25, ("c", "d"): 0.1}
        report = stability_report(ref, cmp_)
        assert report.unstable_fraction == pytest.approx(0.5)

    def test_vanished_pair_is_unstable(self):
        ref = {("a", "b"): 0.1}
        report = stability_report(ref, {})
        assert report.unstable_fraction == 1.0
        assert report.comparison == (0.0,)

    def test_changes_ratios(self):
        ref = {("a", "b"): 0.2}
        cmp_ = {("a", "b"): 0.1}
        report = stability_report(ref, cmp_)
        assert report.changes() == [pytest.approx(0.5)]

    def test_top_k_limits_tracking(self):
        ref = {(f"a{i}", f"b{i}"): 0.1 / (i + 1) for i in range(20)}
        report = stability_report(ref, ref, top_k=5)
        assert len(report.pairs) == 5

    def test_custom_change_factor(self):
        ref = {("a", "b"): 0.1}
        cmp_ = {("a", "b"): 0.14}
        strict = stability_report(ref, cmp_, change_factor=1.2)
        loose = stability_report(ref, cmp_, change_factor=2.0)
        assert strict.unstable_fraction == 1.0
        assert loose.unstable_fraction == 0.0

    def test_invalid_change_factor(self):
        with pytest.raises(ValueError):
            stability_report({}, {}, change_factor=1.0)

    def test_empty_reference(self):
        report = stability_report({}, {})
        assert report.unstable_fraction == 0.0


class TestDominance:
    @pytest.fixture
    def problem(self):
        # Heavy pair (a,b) dominates cost; sizes skewed toward a.
        return PlacementProblem.build(
            objects={"a": 50.0, "b": 30.0, "c": 10.0, "d": 5.0, "e": 5.0},
            nodes=2,
            correlations={("a", "b"): 0.9, ("c", "d"): 0.1},
        )

    def test_fractions_monotone(self, problem):
        curves = dominance_curves(problem, checkpoints=[1, 2, 3, 4, 5])
        assert list(curves.size_fraction) == sorted(curves.size_fraction)
        assert list(curves.cost_fraction) == sorted(curves.cost_fraction)

    def test_full_scope_covers_everything(self, problem):
        curves = dominance_curves(problem, checkpoints=[5])
        assert curves.size_fraction[-1] == pytest.approx(1.0)
        assert curves.cost_fraction[-1] == pytest.approx(1.0)

    def test_pair_counts_when_both_endpoints_in_scope(self, problem):
        curves = dominance_curves(problem, checkpoints=[1, 2])
        # Scope 1 = {a}: pair (a,b) not yet covered.
        assert curves.cost_fraction[0] == 0.0
        # Scope 2 = {a,b}: (a,b) covered -> 27/(27+1) of total weight.
        total = 0.9 * 30 + 0.1 * 5
        assert curves.cost_fraction[1] == pytest.approx(0.9 * 30 / total)

    def test_top_keywords_dominate(self, problem):
        curves = dominance_curves(problem, checkpoints=[2, 5])
        size2, cost2 = curves.coverage_at(2)
        assert size2 == pytest.approx(80 / 100)
        assert cost2 > 0.9

    def test_default_checkpoints_end_at_t(self, problem):
        curves = dominance_curves(problem)
        assert curves.checkpoints[-1] == problem.num_objects

    def test_unknown_scope_raises(self, problem):
        curves = dominance_curves(problem, checkpoints=[2])
        with pytest.raises(KeyError):
            curves.coverage_at(3)

    def test_no_valid_checkpoints_rejected(self, problem):
        with pytest.raises(ValueError):
            dominance_curves(problem, checkpoints=[99])

    def test_problem_without_pairs(self):
        p = PlacementProblem.build({"a": 1.0, "b": 3.0}, 2, {})
        curves = dominance_curves(p, checkpoints=[1, 2])
        assert curves.cost_fraction == (0.0, 0.0)
        assert curves.ranking[0] == "b"  # size-descending fallback


class TestReporting:
    def test_normalize(self):
        assert normalize_to([2.0, 4.0], 4.0) == [0.5, 1.0]

    def test_normalize_zero_baseline(self):
        with pytest.raises(ValueError):
            normalize_to([1.0], 0.0)

    def test_table_alignment(self):
        table = format_table(["name", "value"], [["hash", 1.0], ["lprr", 0.25]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)
        assert "0.2500" in table

    def test_table_row_width_mismatch(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a"], [["x", "y"]])

    def test_series_rendering(self):
        text = format_series("lprr", [10, 20], [0.5, 0.25])
        assert text.startswith("lprr:")
        assert "10: 0.5000" in text

    def test_series_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("s", [1], [1.0, 2.0])
