"""Tests for importance ranking (repro.core.importance)."""

import numpy as np
import pytest

from repro.core.importance import importance_ranking, importance_scores, top_important
from repro.core.problem import PlacementProblem


@pytest.fixture
def skewed_problem():
    # Pair weights: (a,b): 0.9*1 = 0.9; (c,d): 0.5*1; (e,f): 0.1*1.
    return PlacementProblem.build(
        objects={o: 1.0 for o in "abcdefgh"},
        nodes=2,
        correlations={("a", "b"): 0.9, ("c", "d"): 0.5, ("e", "f"): 0.1},
    )


class TestRanking:
    def test_order_follows_pair_weight(self, skewed_problem):
        ranking = importance_ranking(skewed_problem)
        assert ranking[:2] == ["a", "b"]
        assert ranking[2:4] == ["c", "d"]
        assert ranking[4:6] == ["e", "f"]

    def test_never_paired_ranked_last(self, skewed_problem):
        ranking = importance_ranking(skewed_problem)
        assert set(ranking[6:]) == {"g", "h"}

    def test_never_paired_ordered_by_size(self):
        p = PlacementProblem.build(
            {"a": 1.0, "b": 1.0, "small": 1.0, "big": 10.0},
            2,
            {("a", "b"): 0.5},
        )
        ranking = importance_ranking(p)
        assert ranking[2:] == ["big", "small"]

    def test_shared_object_appears_once(self):
        # b participates in both top pairs; it must not duplicate.
        p = PlacementProblem.build(
            {"a": 1.0, "b": 1.0, "c": 1.0},
            2,
            {("a", "b"): 0.9, ("b", "c"): 0.8},
        )
        ranking = importance_ranking(p)
        assert sorted(ranking) == ["a", "b", "c"]
        assert ranking[:2] == ["a", "b"]
        assert ranking[2] == "c"

    def test_no_pairs_falls_back_to_size(self):
        p = PlacementProblem.build({"s": 1.0, "m": 5.0, "l": 9.0}, 2, {})
        assert importance_ranking(p) == ["l", "m", "s"]

    def test_weight_not_just_correlation(self):
        """Ranking uses r*w, so a big low-r pair can beat a small high-r one."""
        p = PlacementProblem.build(
            {"big1": 100.0, "big2": 100.0, "s1": 1.0, "s2": 1.0},
            2,
            {("big1", "big2"): 0.2, ("s1", "s2"): 0.9},  # 20 vs 0.9
        )
        ranking = importance_ranking(p)
        assert ranking[:2] == ["big1", "big2"]


class TestScoresAndTop:
    def test_scores_align_with_ranking(self, skewed_problem):
        ranking = importance_ranking(skewed_problem)
        scores = importance_scores(skewed_problem)
        for rank, obj in enumerate(ranking):
            assert scores[skewed_problem.object_index(obj)] == rank

    def test_scores_are_a_permutation(self, skewed_problem):
        scores = importance_scores(skewed_problem)
        assert sorted(scores.tolist()) == list(range(8))

    def test_top_important_prefix(self, skewed_problem):
        assert top_important(skewed_problem, 4) == ["a", "b", "c", "d"]

    def test_top_important_clipped(self, skewed_problem):
        assert len(top_important(skewed_problem, 100)) == 8

    def test_negative_scope_rejected(self, skewed_problem):
        with pytest.raises(ValueError):
            top_important(skewed_problem, -1)

    def test_zero_scope(self, skewed_problem):
        assert top_important(skewed_problem, 0) == []

    def test_deterministic(self, skewed_problem):
        assert importance_ranking(skewed_problem) == importance_ranking(skewed_problem)
