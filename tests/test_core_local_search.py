"""Tests for local-search placement (repro.core.local_search)."""

import numpy as np
import pytest

from repro.core.exact import solve_exact
from repro.core.greedy import greedy_placement
from repro.core.hashing import random_hash_placement
from repro.core.local_search import local_search_placement
from repro.core.placement import Placement
from repro.core.problem import PlacementProblem


@pytest.fixture
def clustered():
    return PlacementProblem.build(
        objects={f"o{i}": 1.0 for i in range(8)},
        nodes={k: 4.0 for k in range(2)},
        correlations={
            ("o0", "o1"): 0.9,
            ("o2", "o3"): 0.8,
            ("o4", "o5"): 0.7,
            ("o6", "o7"): 0.6,
            ("o0", "o2"): 0.05,
        },
    )


class TestLocalSearch:
    def test_never_worse_than_start(self, clustered):
        start = random_hash_placement(clustered)
        improved = local_search_placement(clustered, start=start)
        assert improved.communication_cost() <= start.communication_cost() + 1e-12

    def test_fixes_bad_start_substantially(self, clustered):
        # Worst split: every couple divided (cost = total pair weight).
        start = Placement(clustered, np.array([0, 1, 0, 1, 0, 1, 0, 1]))
        improved = local_search_placement(clustered, start=start, rng=0)
        exact = solve_exact(clustered)
        # Local search unites every couple; at worst it keeps the weak
        # cross pair (o0,o2) split — a true local optimum.
        assert improved.communication_cost() <= exact.cost + 0.05 + 1e-9
        assert improved.communication_cost() < start.communication_cost() / 10

    def test_reaches_optimum_without_competing_cross_pairs(self):
        p = PlacementProblem.build(
            {f"o{i}": 1.0 for i in range(4)},
            {0: 2.0, 1: 2.0},
            {("o0", "o1"): 0.9, ("o2", "o3"): 0.8},
        )
        start = Placement(p, np.array([0, 1, 0, 1]))
        improved = local_search_placement(p, start=start, rng=0)
        assert improved.communication_cost() == pytest.approx(0.0)

    def test_respects_capacity(self, clustered):
        start = greedy_placement(clustered)
        improved = local_search_placement(clustered, start=start)
        assert improved.is_feasible()

    def test_default_start_is_greedy(self, clustered):
        improved = local_search_placement(clustered, rng=1)
        greedy_cost = greedy_placement(clustered).communication_cost()
        assert improved.communication_cost() <= greedy_cost + 1e-12

    def test_swaps_escape_capacity_lock(self):
        """Full nodes block single moves; only a swap can fix the split."""
        p = PlacementProblem.build(
            {"a": 2.0, "b": 2.0, "c": 2.0, "d": 2.0},
            {0: 4.0, 1: 4.0},
            {("a", "b"): 1.0, ("c", "d"): 1.0},
        )
        # a,c on node 0; b,d on node 1: both pairs split, nodes full.
        # Pair cost w = min(sizes) = 2, so the stuck cost is 2 + 2 = 4.
        start = Placement(p, np.array([0, 1, 0, 1]))
        no_swaps = local_search_placement(p, start=start, allow_swaps=False, rng=0)
        with_swaps = local_search_placement(p, start=start, allow_swaps=True, rng=0)
        assert no_swaps.communication_cost() == pytest.approx(4.0)  # stuck
        assert with_swaps.communication_cost() == pytest.approx(0.0)

    def test_zero_passes_returns_start(self, clustered):
        start = random_hash_placement(clustered)
        same = local_search_placement(clustered, start=start, max_passes=0)
        assert np.array_equal(same.assignment, start.assignment)

    def test_negative_passes_rejected(self, clustered):
        with pytest.raises(ValueError):
            local_search_placement(clustered, max_passes=-1)

    def test_deterministic_under_seed(self, clustered):
        start = random_hash_placement(clustered)
        a = local_search_placement(clustered, start=start, rng=42)
        b = local_search_placement(clustered, start=start, rng=42)
        assert np.array_equal(a.assignment, b.assignment)

    def test_no_pairs_noop(self):
        p = PlacementProblem.build({"a": 1.0, "b": 1.0}, 2, {})
        start = Placement(p, np.array([0, 1]))
        result = local_search_placement(p, start=start)
        assert result.communication_cost() == 0.0

    def test_registered_planner(self, clustered):
        from repro.core.strategies import plan

        placement = plan(clustered, "local_search").placement
        assert placement.is_feasible()
