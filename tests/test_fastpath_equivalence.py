"""Property tests: every vectorized fast path is byte-identical to its loop.

PR 5 added batched engines behind existing APIs — bulk LP constraint
assembly, batched randomized rounding, deduplicating query-log replay,
vectorized Count-Min ingestion, and chunked correlation mining.  Each
one promises *byte-identical* output to the legacy per-item loop under
fixed seeds; these hypothesis suites hold them to it, including dict
insertion order and the type-gate fallbacks of the miner.
"""

import json
from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.correlation import (
    CorrelationEstimator,
    cooccurrence_correlations,
    operation_pairs,
    two_smallest_correlations,
    union_largest_correlations,
)
from repro.core.lp import _build_placement_lp_loop, build_placement_lp
from repro.core.problem import PlacementProblem
from repro.core.rounding import _round_trials_loop, round_trials_batched
from repro.online.sketch import SketchCorrelationEstimator
from repro.search.documents import Corpus, Document
from repro.search.engine import DistributedSearchEngine
from repro.search.index import InvertedIndex
from repro.search.query import Query

# ----------------------------------------------------------------------
# Shared strategies
# ----------------------------------------------------------------------

# Ids that keep the miner on its vectorized fast path (homogeneous str
# or numeric tables) and ids that force the exact loop fallback (bool
# conflation, str/number mixes, unhashable-rank tuples, NaN).
FAST_IDS = [f"o{i}" for i in range(8)]
GATE_IDS = [0, 1, True, 1.0, 2.5, "o0", ("t", 1), float("nan")]


def _traces(ids, max_ops=25, max_len=5):
    operation = st.lists(st.sampled_from(ids), min_size=0, max_size=max_len)
    return st.lists(operation.map(tuple), min_size=0, max_size=max_ops)


def _sizes_for(ids, draw, rng):
    # Deliberately includes ties so tie-breaking order is exercised.
    return {obj: float(rng.integers(1, 5)) for obj in ids}


def _mine_reference(trace, mode="cooccurrence", sizes=None, min_support=1):
    """The pre-vectorization miner: one Counter update per operation."""
    counts: Counter = Counter()
    total = 0
    for operation in trace:
        total += 1
        counts.update(operation_pairs(operation, mode, sizes))
    if total == 0:
        return {}
    return {p: c / total for p, c in counts.items() if c >= min_support}


def _assert_same_mapping(fast, legacy):
    assert fast == legacy
    assert list(fast) == list(legacy)  # insertion order is part of the contract


# ----------------------------------------------------------------------
# Correlation mining
# ----------------------------------------------------------------------

class TestMiningEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(trace=_traces(FAST_IDS), min_support=st.integers(1, 3))
    def test_cooccurrence_fast_path(self, trace, min_support):
        _assert_same_mapping(
            cooccurrence_correlations(trace, min_support=min_support),
            _mine_reference(trace, min_support=min_support),
        )

    @settings(max_examples=40, deadline=None)
    @given(trace=_traces(GATE_IDS), min_support=st.integers(1, 2))
    def test_cooccurrence_gate_fallback(self, trace, min_support):
        _assert_same_mapping(
            cooccurrence_correlations(trace, min_support=min_support),
            _mine_reference(trace, min_support=min_support),
        )

    @settings(max_examples=40, deadline=None)
    @given(trace=_traces(FAST_IDS), seed=st.integers(0, 2**31 - 1))
    def test_two_smallest_fast_path(self, trace, seed):
        sizes = _sizes_for(FAST_IDS, None, np.random.default_rng(seed))
        _assert_same_mapping(
            two_smallest_correlations(trace, sizes),
            _mine_reference(trace, "two_smallest", sizes),
        )

    @settings(max_examples=40, deadline=None)
    @given(trace=_traces(FAST_IDS), seed=st.integers(0, 2**31 - 1))
    def test_union_largest_fast_path(self, trace, seed):
        sizes = _sizes_for(FAST_IDS, None, np.random.default_rng(seed))
        _assert_same_mapping(
            union_largest_correlations(trace, sizes),
            _mine_reference(trace, "union_largest", sizes),
        )

    @settings(max_examples=25, deadline=None)
    @given(trace=_traces(FAST_IDS), seed=st.integers(0, 2**31 - 1))
    def test_sized_modes_with_partial_sizes(self, trace, seed):
        # Unknown objects must be dropped identically on both paths.
        rng = np.random.default_rng(seed)
        sizes = _sizes_for(FAST_IDS[:5], None, rng)
        for mode, fn in (
            ("two_smallest", two_smallest_correlations),
            ("union_largest", union_largest_correlations),
        ):
            _assert_same_mapping(fn(trace, sizes), _mine_reference(trace, mode, sizes))

    @settings(max_examples=30, deadline=None)
    @given(trace=_traces(FAST_IDS, max_ops=15))
    def test_exact_estimator_observe_trace(self, trace):
        incremental = CorrelationEstimator()
        incremental.observe_all(trace)
        batched = CorrelationEstimator()
        batched.observe_trace(list(trace))
        _assert_same_mapping(batched.correlations(), incremental.correlations())
        assert batched.num_operations == incremental.num_operations


# ----------------------------------------------------------------------
# Sketch ingestion
# ----------------------------------------------------------------------

class TestSketchIngestEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        trace=_traces(FAST_IDS, max_ops=20),
        mode=st.sampled_from(["cooccurrence", "two_smallest", "union_largest"]),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_observe_trace_matches_observe_all(self, trace, mode, seed):
        rng = np.random.default_rng(seed)
        sizes = None if mode == "cooccurrence" else _sizes_for(FAST_IDS, None, rng)
        kwargs = dict(mode=mode, sizes=sizes, width=64, depth=3, heavy_hitters=8, seed=seed)
        incremental = SketchCorrelationEstimator(**kwargs)
        incremental.observe_all(trace)
        batched = SketchCorrelationEstimator(**kwargs)
        assert batched.observe_trace(list(trace)) == len(trace)
        # Full serialized state: sketch table, heavy-hitter entries
        # (including dict order), and the operation total.
        assert json.dumps(batched.to_dict(), sort_keys=False) == json.dumps(
            incremental.to_dict(), sort_keys=False
        )
        _assert_same_mapping(batched.correlations(), incremental.correlations())


# ----------------------------------------------------------------------
# LP assembly and randomized rounding
# ----------------------------------------------------------------------

@st.composite
def _problems(draw, max_objects=10, max_nodes=4):
    t = draw(st.integers(2, max_objects))
    n = draw(st.integers(2, max_nodes))
    seed = draw(st.integers(0, 2**31 - 1))
    with_resource = draw(st.booleans())
    rng = np.random.default_rng(seed)
    objects = {f"o{i}": float(rng.uniform(0.5, 2.0)) for i in range(t)}
    capacity = sum(objects.values()) / n * 2.0 + max(objects.values())
    correlations = {}
    ids = list(objects)
    for i in range(t):
        for j in range(i + 1, t):
            if rng.random() < 0.5:
                correlations[(ids[i], ids[j])] = float(rng.uniform(0.01, 1.0))
    resources = None
    if with_resource:
        loads = {o: float(rng.uniform(0.1, 1.5)) for o in ids}
        resources = {"cpu": (loads, 2.0 * sum(loads.values()) / n)}
    return PlacementProblem.build(
        objects, {k: capacity for k in range(n)}, correlations, resources=resources
    )


def _lp_state(program):
    return (
        program._var_names,
        program._lower,
        program._upper,
        program._objective,
        program._rows,
        program._cols,
        program._vals,
        program._senses,
        program._rhs,
        program._con_names,
    )


class TestLPAssemblyEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(problem=_problems())
    def test_bulk_assembly_matches_loop(self, problem):
        assert _lp_state(build_placement_lp(problem)) == _lp_state(
            _build_placement_lp_loop(problem)
        )


class TestRoundingEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(
        problem=_problems(max_objects=8, max_nodes=4),
        trials=st.integers(1, 8),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_batched_sweep_matches_per_trial_loop(self, problem, trials, seed):
        from repro.core.lp import FractionalPlacement, LPStats

        rng = np.random.default_rng(seed)
        fractions = rng.dirichlet(
            np.full(len(problem.node_ids), 0.5), size=len(problem.object_ids)
        )
        fractional = FractionalPlacement(problem, fractions, 0.0, LPStats(0, 0, 0, 0.0, 0))
        seqs = np.random.SeedSequence(seed).spawn(trials)
        fast_assign, fast_rounds = round_trials_batched(fractional, seqs)
        loop_assign, loop_rounds = _round_trials_loop(fractional, seqs)
        np.testing.assert_array_equal(fast_assign, loop_assign)
        np.testing.assert_array_equal(fast_rounds, loop_rounds)


# ----------------------------------------------------------------------
# Query-log replay
# ----------------------------------------------------------------------

@st.composite
def _replay_cases(draw):
    seed = draw(st.integers(0, 2**31 - 1))
    num_docs = draw(st.integers(3, 10))
    num_queries = draw(st.integers(0, 30))
    rng = np.random.default_rng(seed)
    vocab = [f"w{i}" for i in range(8)]
    docs = []
    for d in range(num_docs):
        count = int(rng.integers(1, 5))
        words = frozenset(rng.choice(vocab, size=count, replace=False).tolist())
        docs.append(Document(f"d{d}", words))
    index = InvertedIndex.from_corpus(Corpus(docs))
    lookup = {w: int(rng.integers(0, 3)) for w in index.vocabulary}
    present = sorted(index.vocabulary)
    queries = []
    for _ in range(num_queries):
        count = int(rng.integers(1, min(4, len(present)) + 1))
        words = rng.choice(present, size=count, replace=False).tolist()
        queries.append(Query(tuple(words)))
    return index, lookup, queries


class TestReplayEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(case=_replay_cases(), mode=st.sampled_from(["intersection", "union"]))
    def test_dedup_replay_matches_sequential(self, case, mode):
        index, lookup, queries = case
        engine = DistributedSearchEngine(index, lookup)
        fast = engine.execute_log(queries, mode=mode, dedup=True)
        legacy = engine.execute_log(queries, mode=mode, dedup=False)
        assert fast.queries == legacy.queries
        assert fast.total_bytes == legacy.total_bytes
        assert fast.local_queries == legacy.local_queries
        assert fast.total_hops == legacy.total_hops
        assert fast.unserved_queries == legacy.unserved_queries
        assert fast.per_node_bytes_sent == legacy.per_node_bytes_sent
        assert list(fast.per_node_bytes_sent) == list(legacy.per_node_bytes_sent)
