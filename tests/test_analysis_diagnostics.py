"""Tests for placement diagnostics (repro.analysis.diagnostics)."""

import numpy as np
import pytest

from repro.analysis.diagnostics import best_moves, node_cut_weights, regret_pairs
from repro.core.placement import Placement
from repro.core.problem import PlacementProblem


@pytest.fixture
def problem():
    return PlacementProblem.build(
        objects={"a": 1.0, "b": 1.0, "c": 1.0, "d": 1.0},
        nodes={0: 3.0, 1: 3.0},
        correlations={("a", "b"): 0.9, ("c", "d"): 0.4, ("a", "c"): 0.1},
    )


@pytest.fixture
def bad_placement(problem):
    # Splits (a,b) [0.9] and (a,c) [0.1]; (c,d) co-located on node 1.
    return Placement.from_mapping(problem, {"a": 0, "b": 1, "c": 1, "d": 1})


class TestRegretPairs:
    def test_sorted_by_weight(self, bad_placement):
        regrets = regret_pairs(bad_placement)
        weights = [r.weight for r in regrets]
        assert weights == sorted(weights, reverse=True)
        assert {regrets[0].a, regrets[0].b} == {"a", "b"}

    def test_only_split_pairs_listed(self, bad_placement):
        regrets = regret_pairs(bad_placement)
        assert all({r.a, r.b} != {"c", "d"} for r in regrets)
        assert len(regrets) == 2

    def test_top_k_truncation(self, bad_placement):
        assert len(regret_pairs(bad_placement, top_k=1)) == 1

    def test_nodes_reported(self, bad_placement):
        top = regret_pairs(bad_placement)[0]
        assert {top.node_a, top.node_b} == {0, 1}

    def test_no_pairs(self):
        p = PlacementProblem.build({"a": 1.0}, 2, {})
        assert regret_pairs(Placement(p, np.array([0]))) == []

    def test_zero_cost_placement(self, problem):
        placement = Placement.from_mapping(problem, {"a": 0, "b": 0, "c": 0, "d": 1})
        # (c,d) split, weight 0.4; (a,b) and (a,c) together.
        regrets = regret_pairs(placement)
        assert len(regrets) == 1
        assert regrets[0].weight == pytest.approx(0.4)


class TestBestMoves:
    def test_best_move_heals_heaviest_pair(self, bad_placement):
        # Node 1 is full, so capacity-respecting advice moves b to a.
        moves = best_moves(bad_placement)
        assert moves[0].obj == "b"
        assert moves[0].destination == 0
        assert moves[0].gain == pytest.approx(0.9)
        # Ignoring capacity, moving a to node 1 heals both split pairs.
        unconstrained = best_moves(bad_placement, respect_capacity=False)
        assert unconstrained[0].obj == "a"
        assert unconstrained[0].gain == pytest.approx(1.0)
        assert not unconstrained[0].fits_capacity

    def test_gain_accounts_for_broken_colocations(self, problem):
        placement = Placement.from_mapping(problem, {"a": 0, "b": 0, "c": 1, "d": 1})
        moves = best_moves(placement)
        # Moving c to node 0 heals (a,c)=0.1 but breaks (c,d)=0.4: no
        # positive move exists.
        assert moves == []

    def test_capacity_respected(self, problem):
        # Node 1 is full (3 objects of size 1, capacity 3).
        placement = Placement.from_mapping(problem, {"a": 0, "b": 1, "c": 1, "d": 1})
        moves = best_moves(placement, respect_capacity=True)
        assert all(m.destination != 1 or m.fits_capacity for m in moves)
        # The profitable move of a -> node 1 is blocked by capacity.
        assert all(m.obj != "a" or m.destination != 1 for m in moves)

    def test_capacity_flag_when_unrespected(self, problem):
        placement = Placement.from_mapping(problem, {"a": 0, "b": 1, "c": 1, "d": 1})
        moves = best_moves(placement, respect_capacity=False)
        assert any(m.obj == "a" and not m.fits_capacity for m in moves)

    def test_gains_descending(self, bad_placement):
        moves = best_moves(bad_placement, respect_capacity=False)
        gains = [m.gain for m in moves]
        assert gains == sorted(gains, reverse=True)

    def test_applying_best_move_reduces_cost_by_gain(self, bad_placement):
        problem = bad_placement.problem
        move = best_moves(bad_placement, respect_capacity=False)[0]
        assignment = bad_placement.assignment.copy()
        assignment[problem.object_index(move.obj)] = problem.node_index(
            move.destination
        )
        after = Placement(problem, assignment)
        assert after.communication_cost() == pytest.approx(
            bad_placement.communication_cost() - move.gain
        )


class TestNodeCutWeights:
    def test_split_weight_charged_to_both_ends(self, bad_placement):
        cuts = node_cut_weights(bad_placement)
        assert cuts[0] == pytest.approx(1.0)  # a's side: 0.9 + 0.1
        assert cuts[1] == pytest.approx(1.0)  # b and c's side

    def test_zero_for_local_placement(self, problem):
        placement = Placement(problem, np.zeros(4, dtype=np.int64))
        cuts = node_cut_weights(placement)
        assert all(v == 0.0 for v in cuts.values())
