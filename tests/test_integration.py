"""Integration tests across subsystems.

These exercise whole pipelines the way the examples and benchmarks do,
on tiny instances: corpus -> index -> queries -> problem -> placement
-> engine/cluster, plus drift/replanning and replication flows.
"""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.core import (
    LPRRPlanner,
    Placement,
    greedy_placement,
    random_hash_placement,
    select_migrations,
    solve_exact,
)
from repro.core.replication import greedy_replicated_placement
from repro.search.engine import DistributedSearchEngine, build_placement_problem
from repro.search.index import ITEM_BYTES, InvertedIndex
from repro.search.replicated_engine import ReplicatedSearchEngine
from repro.workloads.corpus_gen import generate_corpus
from repro.workloads.query_gen import QueryWorkloadModel


@pytest.fixture(scope="module")
def pipeline():
    corpus = generate_corpus(150, 400, words_per_doc=25, seed=11)
    index = InvertedIndex.from_corpus(corpus)
    model = QueryWorkloadModel(index.vocabulary, num_topics=40, seed=11)
    log = model.generate(3000, rng=11)
    problem = build_placement_problem(index, log, 4, min_support=2)
    return corpus, index, model, log, problem


class TestEndToEnd:
    def test_model_cost_orders_match_engine_bytes(self, pipeline):
        """The CCA objective and the replayed engine traffic must rank
        the three paper strategies identically."""
        _, index, _, log, problem = pipeline
        placements = {
            "hash": random_hash_placement(problem),
            "greedy": greedy_placement(problem.with_capacities(
                2 * problem.total_size / problem.num_nodes
            )),
            "lprr": LPRRPlanner(seed=0).plan(problem).placement,
        }
        model_costs = {
            name: Placement(problem, p.assignment).communication_cost()
            for name, p in placements.items()
        }
        engine_bytes = {
            name: DistributedSearchEngine(index, p).execute_log(log).total_bytes
            for name, p in placements.items()
        }
        model_order = sorted(model_costs, key=model_costs.get)
        engine_order = sorted(engine_bytes, key=engine_bytes.get)
        assert model_order == engine_order
        assert engine_bytes["lprr"] < engine_bytes["hash"]

    def test_engine_and_cluster_agree_on_locality(self, pipeline):
        """A query whose keywords share a node is free in both the
        engine and the cluster abstraction."""
        _, index, _, _, problem = pipeline
        placement = Placement(problem, np.zeros(problem.num_objects, dtype=np.int64))
        engine = DistributedSearchEngine(index, placement)
        cluster = Cluster(placement)
        words = list(problem.object_ids[:3])
        assert engine.execute(words).bytes_transferred == 0
        assert cluster.execute_intersection(words).bytes_transferred == 0

    def test_cluster_intersection_upper_bounds_engine(self, pipeline):
        """The cluster's conservative model (running result bounded by
        the smallest object) never undercounts the engine's real
        shrinking-intersection traffic."""
        _, index, _, log, problem = pipeline
        placement = random_hash_placement(problem)
        engine = DistributedSearchEngine(index, placement)
        cluster = Cluster(placement)
        vocabulary = set(problem.object_ids)
        for query in list(log)[:200]:
            words = [w for w in dict.fromkeys(query.keywords) if w in vocabulary]
            if len(words) < 2:
                continue
            engine_bytes = engine.execute(words).bytes_transferred
            cluster_bytes = cluster.execute_intersection(words).bytes_transferred
            assert engine_bytes <= cluster_bytes + 1e-9

    def test_exact_confirms_lprr_on_tiny_subproblem(self, pipeline):
        _, _, _, _, problem = pipeline
        from repro.core.importance import top_important

        tiny_ids = top_important(problem, 8)
        caps = np.full(problem.num_nodes, problem.total_size)
        tiny = problem.subproblem(tiny_ids, capacities=caps)
        exact = solve_exact(tiny)
        lprr = LPRRPlanner(capacity_factor=None, rounding_trials=40, seed=0).plan(tiny)
        assert lprr.cost >= exact.cost - 1e-9
        assert lprr.cost <= exact.cost * 1.5 + 1e-6

    def test_drift_replan_migrate_cycle(self, pipeline):
        _, index, model, log, problem = pipeline
        placement1 = LPRRPlanner(seed=0).plan(problem).placement

        drifted = model.drifted(0.3, seed=12)
        log2 = drifted.generate(3000, rng=12)
        problem2 = build_placement_problem(index, log2, 4, min_support=2)

        # Carry period-1 decisions onto period-2's problem.
        carried = {}
        p1_map = placement1.to_mapping()
        for obj in problem2.object_ids:
            carried[obj] = p1_map.get(obj, 0)
        stale = Placement.from_mapping(problem2, carried)
        fresh = LPRRPlanner(seed=0).plan(problem2).placement
        plan = select_migrations(stale, fresh, budget_bytes=problem2.total_size / 10)

        assert plan.cost_after <= plan.cost_before + 1e-9
        final = plan.apply(stale)
        assert final.communication_cost() == pytest.approx(plan.cost_after)

    def test_replication_reduces_engine_traffic(self, pipeline):
        _, index, _, log, problem = pipeline
        capped = problem.with_capacities(problem.total_size)
        single = greedy_placement(capped)
        engine1 = DistributedSearchEngine(index, single)

        replicated = greedy_replicated_placement(
            capped, replicas=2, primary_strategy=lambda p: greedy_placement(p)
        )
        engine2 = ReplicatedSearchEngine(index, replicated)
        assert (
            engine2.execute_log(log).total_bytes
            <= engine1.execute_log(log).total_bytes
        )

    def test_planner_registry_round_trip(self, pipeline):
        from repro.core.strategies import available_planners, plan

        _, _, _, _, problem = pipeline
        capped = problem.with_capacities(problem.total_size)
        for name in available_planners():
            result = plan(capped, name)
            assert result.placement.assignment.shape == (problem.num_objects,)

    def test_two_smallest_problem_weights_bound_engine_pairs(self, pipeline):
        """Every modeled pair weight is realizable: r * w equals the
        observed per-query shipped bytes for two-keyword queries."""
        _, index, _, log, problem = pipeline
        # Find a modeled pair and check w equals min index size.
        pair = next(problem.pairs())
        a = problem.object_ids[pair.i]
        b = problem.object_ids[pair.j]
        assert pair.cost == min(index.size_bytes(a), index.size_bytes(b))
