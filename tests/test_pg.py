"""Tests for placement-group indirection (repro.pg).

Covers the ISSUE-7 acceptance properties: same-seed determinism
(byte-identical maps), minimal remap on node membership changes,
aggregation/expansion feasibility preservation, the ``PlacementMap``
protocol, cache isolation between exact and PG plans, and the
PG-granular migration/repair composition.
"""

import json

import numpy as np
import pytest

from repro.core.placement import Placement, PlacementMap
from repro.core.problem import PlacementProblem
from repro.core.strategies import (
    PlanConfig,
    PlanScope,
    available_planners,
    plan,
)
from repro.exceptions import PlacementError, TraceFormatError
from repro.pg import (
    PGMap,
    aggregate_problem,
    build_grouping,
    expand_assignment,
    map_from_coarse,
    pg_group,
    plan_with_groups,
    rendezvous_node,
    repair_lost_groups,
    select_group_migrations,
)
from repro.resilience import plan_with_fallbacks, synthetic_scenario


@pytest.fixture(scope="module")
def scenario():
    return synthetic_scenario(
        num_objects=80, num_nodes=5, num_operations=40, seed=7
    )


@pytest.fixture(scope="module")
def problem(scenario):
    return scenario[0]


PG_CONFIG = PlanConfig(scope=PlanScope.pg(groups=16, important=8), seed=3)


# ----------------------------------------------------------------------
# Hashing primitives
# ----------------------------------------------------------------------
class TestHashing:
    def test_pg_group_stable_and_in_range(self):
        for obj in ("a", "obj042", ("pg", 3), 17):
            g = pg_group(obj, 16)
            assert 0 <= g < 16
            assert pg_group(obj, 16) == g

    def test_pg_group_salt_changes_grouping(self):
        groups_a = [pg_group(f"o{i}", 16) for i in range(200)]
        groups_b = [pg_group(f"o{i}", 16, salt="s1") for i in range(200)]
        assert groups_a != groups_b

    def test_pg_group_rejects_empty_universe(self):
        with pytest.raises(ValueError):
            pg_group("a", 0)

    def test_rendezvous_scores_keyed_on_ids_not_indices(self):
        nodes = ("n0", "n1", "n2", "n3")
        full = rendezvous_node("g0", range(4), nodes)
        # Dropping a *losing* candidate never changes the winner.
        reduced = [k for k in range(4) if k != (full + 1) % 4]
        assert rendezvous_node("g0", reduced, nodes) == full

    def test_rendezvous_requires_candidates(self):
        with pytest.raises(PlacementError):
            rendezvous_node("g0", [], ("n0",))


# ----------------------------------------------------------------------
# PlacementMap protocol
# ----------------------------------------------------------------------
class TestPlacementMapProtocol:
    def test_placement_and_pg_map_satisfy_protocol(self, problem):
        result = plan(problem, "lprr:pg", PG_CONFIG)
        assert isinstance(result.placement, PlacementMap)
        assert isinstance(result.details, PlacementMap)

    def test_pg_map_round_trip(self, problem):
        pg_map = plan(problem, "lprr:pg", PG_CONFIG).details
        restored = PGMap.from_dict(pg_map.to_dict())
        # Ids restore as strings (the serialization convention); the
        # synthetic scenario's ids are strings already, so the restored
        # map answers identically.
        for obj in problem.object_ids:
            assert restored.assign(obj) == pg_map.assign(obj)
        assert restored.to_dict() == pg_map.to_dict()

    def test_pg_map_rejects_wrong_schema(self):
        with pytest.raises(TraceFormatError):
            PGMap.from_dict({"schema": "repro/placement/v1"})

    def test_placement_round_trip(self, problem):
        placement = plan(problem, "greedy").placement
        restored = Placement.from_dict(placement.to_dict(), problem)
        assert np.array_equal(restored.assignment, placement.assignment)
        for obj in problem.object_ids[:5]:
            assert placement.locate(obj) == placement.node_of(obj)
            assert placement.assign(obj) == int(
                placement.assignment[problem.object_index(obj)]
            )


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_same_seed_byte_identical_maps(self, problem):
        a = plan(problem, "lprr:pg", PG_CONFIG).details
        b = plan(problem, "lprr:pg", PG_CONFIG).details
        assert json.dumps(a.to_dict(), sort_keys=True) == json.dumps(
            b.to_dict(), sort_keys=True
        )

    def test_different_seed_may_differ_but_stays_valid(self, problem):
        other = plan(
            problem,
            "lprr:pg",
            PlanConfig(scope=PlanScope.pg(groups=16, important=8), seed=11),
        )
        assert other.placement.assignment.shape == (problem.num_objects,)

    def test_grouping_is_pure_function_of_inputs(self, problem):
        a = build_grouping(problem, 16, important=8)
        b = build_grouping(problem, 16, important=8)
        assert np.array_equal(a.object_groups, b.object_groups)
        assert a.exact_ids == b.exact_ids
        assert a.coarse_ids == b.coarse_ids


# ----------------------------------------------------------------------
# Minimal remap on membership changes
# ----------------------------------------------------------------------
class TestMembershipChanges:
    def test_remove_node_remaps_only_its_entries(self, problem):
        pg_map = plan(problem, "lprr:pg", PG_CONFIG).details
        victim_index = int(pg_map.group_nodes[0])
        victim = pg_map.node_ids[victim_index]
        after = pg_map.remove_node(victim)
        for g in range(pg_map.num_groups):
            if int(pg_map.group_nodes[g]) == victim_index:
                assert int(after.group_nodes[g]) != victim_index
            else:
                assert int(after.group_nodes[g]) == int(pg_map.group_nodes[g])
        for obj, k in pg_map.exact_nodes.items():
            if int(k) == victim_index:
                assert after.exact_nodes[obj] != victim_index
            else:
                assert after.exact_nodes[obj] == k
        assert victim_index in after.retired

    def test_add_node_moves_only_groups_it_wins(self, problem):
        pg_map = plan(problem, "lprr:pg", PG_CONFIG).details
        after = pg_map.add_node("nodeX")
        added = after.node_index("nodeX")
        moved = [
            g
            for g in range(pg_map.num_groups)
            if int(after.group_nodes[g]) != int(pg_map.group_nodes[g])
        ]
        # Every moved group moved *onto* the new node, and exactly the
        # groups whose rendezvous draw the new node wins moved.
        for g in moved:
            assert int(after.group_nodes[g]) == added
        for g in range(pg_map.num_groups):
            winner = rendezvous_node(
                f"g{g}", after.live_nodes, after.node_ids, after.salt
            )
            assert (winner == added) == (int(after.group_nodes[g]) == added)
        # Exact objects never move on an add.
        assert after.exact_nodes == pg_map.exact_nodes

    def test_remove_then_add_back_is_stable(self, problem):
        pg_map = plan(problem, "lprr:pg", PG_CONFIG).details
        victim = pg_map.node_ids[int(pg_map.group_nodes[0])]
        back = pg_map.remove_node(victim).add_node(victim)
        assert back.retired == pg_map.retired
        assert back.node_ids == pg_map.node_ids
        # The round trip touches only groups the victim hosted or wins
        # by rendezvous; every other group keeps its planned node.
        victim_index = pg_map.node_index(victim)
        for g in range(pg_map.num_groups):
            winner = rendezvous_node(
                f"g{g}", back.live_nodes, back.node_ids, back.salt
            )
            if (
                int(pg_map.group_nodes[g]) != victim_index
                and winner != victim_index
            ):
                assert int(back.group_nodes[g]) == int(pg_map.group_nodes[g])
        assert back.exact_nodes.keys() == pg_map.exact_nodes.keys()

    def test_remove_errors(self, problem):
        pg_map = plan(problem, "lprr:pg", PG_CONFIG).details
        with pytest.raises(PlacementError):
            pg_map.remove_node("no-such-node")
        victim = pg_map.node_ids[0]
        with pytest.raises(PlacementError):
            pg_map.remove_node(victim).remove_node(victim)


# ----------------------------------------------------------------------
# Aggregation / expansion
# ----------------------------------------------------------------------
class TestAggregation:
    def test_expand_preserves_node_loads(self, problem):
        """Coarse feasibility is object-level feasibility.

        Aggregation sums tail sizes into their group, so a coarse
        assignment and its expansion put byte-identical loads on every
        node — the invariant that lets the LP reason about K + M
        objects on behalf of all of them.
        """
        grouping = build_grouping(problem, 16, important=8)
        coarse = aggregate_problem(problem, grouping)
        inner = plan(coarse, "lprr", PlanConfig(seed=3))
        pg_map = map_from_coarse(
            problem, grouping, inner.placement.assignment
        )
        expanded = Placement(problem, expand_assignment(grouping, pg_map))
        assert np.allclose(
            expanded.node_loads(), inner.placement.node_loads()
        )
        assert inner.placement.is_feasible(tolerance=0.05) == (
            expanded.is_feasible(tolerance=0.05)
        )

    def test_aggregate_drops_intra_group_pairs_only(self, problem):
        grouping = build_grouping(problem, 16, important=8)
        coarse = aggregate_problem(problem, grouping)
        kept = coarse.correlations.sum()
        mapped = grouping.coarse_of_object[problem.pair_index]
        inter = mapped[:, 0] != mapped[:, 1]
        expected = float(
            (problem.correlations * problem.pair_costs)[inter].sum()
        )
        assert kept == pytest.approx(expected)

    def test_coarse_problem_is_small(self, problem):
        grouping = build_grouping(problem, 16, important=8)
        coarse = aggregate_problem(problem, grouping)
        assert coarse.num_objects <= 16 + 8
        assert coarse.num_objects == grouping.num_coarse

    def test_expand_matches_per_object_assign(self, problem):
        result = plan(problem, "lprr:pg", PG_CONFIG)
        pg_map = result.details
        grouping = build_grouping(problem, 16, important=8)
        fast = expand_assignment(grouping, pg_map)
        slow = np.array([pg_map.assign(obj) for obj in problem.object_ids])
        assert np.array_equal(fast, slow)
        assert np.array_equal(result.placement.assignment, fast)


# ----------------------------------------------------------------------
# Planner integration
# ----------------------------------------------------------------------
class TestPlannerIntegration:
    def test_registered(self):
        assert "lprr:pg" in available_planners()

    def test_lprr_delegates_on_pg_scope(self, problem):
        direct = plan(problem, "lprr:pg", PG_CONFIG)
        via_lprr = plan(problem, "lprr", PG_CONFIG)
        assert via_lprr.planner == "lprr:pg"
        assert np.array_equal(
            direct.placement.assignment, via_lprr.placement.assignment
        )

    def test_diagnostics_shape(self, problem):
        result = plan_with_groups(problem, config=PG_CONFIG)
        diag = result.diagnostics
        assert diag["groups"] == 16
        assert 0 < diag["nonempty_groups"] <= 16
        assert diag["important"] == 8
        assert diag["coarse_objects"] == diag["nonempty_groups"] + 8
        assert diag["cache"] == "off"

    def test_resilient_chain_on_pg_scope(self, problem):
        result = plan_with_fallbacks(problem, config=PG_CONFIG)
        assert result.planner == "resilient"
        assert result.diagnostics["delegate"] == "lprr:pg"
        assert result.diagnostics["degraded"] is False
        first = result.diagnostics["fallback_chain"][0]
        assert first["step"].startswith("lprr:pg")

    def test_plan_scope_validation(self):
        with pytest.raises(ValueError):
            PlanScope(kind="bogus")
        with pytest.raises(ValueError):
            PlanScope.pg(groups=0)
        with pytest.raises(ValueError):
            PlanScope(kind="exact", groups=4)
        with pytest.raises(ValueError):
            PlanScope.exact(top=-1)

    def test_int_scope_normalizes_to_exact(self, problem):
        assert PlanConfig(scope=5).scope_spec == PlanScope.exact(5)
        assert PlanConfig().scope_spec == PlanScope.exact()
        assert PlanConfig(scope=5).scope_limit(problem) == 5
        assert PlanConfig().scope_limit(problem) is None

    def test_heavy_scope_resolves_to_paired_count(self, problem):
        paired = int(np.unique(problem.pair_index).size)
        spec = PlanScope.heavy_pairs()
        assert spec.limit(problem) == paired
        assert PlanScope.heavy_pairs(top=3).limit(problem) == 3


# ----------------------------------------------------------------------
# Cache isolation
# ----------------------------------------------------------------------
class TestCache:
    def test_pg_and_exact_plans_never_collide(self, problem, tmp_path):
        pg_config = PlanConfig(
            scope=PlanScope.pg(groups=16, important=8),
            seed=3,
            cache_dir=str(tmp_path),
        )
        exact_config = PlanConfig(seed=3, cache_dir=str(tmp_path))
        first = plan(problem, "lprr:pg", pg_config)
        exact = plan(problem, "lprr", exact_config)
        second = plan(problem, "lprr:pg", pg_config)
        assert first.diagnostics["cache"] == "miss"
        assert second.diagnostics["cache"] == "hit"
        assert exact.planner == "lprr"
        assert np.array_equal(
            first.placement.assignment, second.placement.assignment
        )
        assert second.details.to_dict() == first.details.to_dict()

    def test_different_grouping_is_a_different_key(self, problem, tmp_path):
        base = PlanConfig(
            scope=PlanScope.pg(groups=16, important=8),
            seed=3,
            cache_dir=str(tmp_path),
        )
        plan(problem, "lprr:pg", base)
        other = plan(
            problem,
            "lprr:pg",
            PlanConfig(
                scope=PlanScope.pg(groups=8, important=8),
                seed=3,
                cache_dir=str(tmp_path),
            ),
        )
        assert other.diagnostics["cache"] == "miss"


# ----------------------------------------------------------------------
# PG-granular migration and repair
# ----------------------------------------------------------------------
class TestMigrationAndRepair:
    def test_zero_budget_moves_nothing(self, problem):
        grouping = build_grouping(problem, 16, important=8)
        current = plan(problem, "lprr:pg", PG_CONFIG).details
        target = plan(
            problem,
            "lprr:pg",
            PlanConfig(scope=PlanScope.pg(groups=16, important=8), seed=9),
        ).details
        new_map, migration = select_group_migrations(
            problem, grouping, current, target, budget_bytes=0.0
        )
        assert migration.num_moves == 0
        for obj in problem.object_ids:
            assert new_map.assign(obj) == current.assign(obj)

    def test_unbounded_budget_moves_toward_target(self, problem):
        grouping = build_grouping(problem, 16, important=8)
        current = plan(problem, "lprr:pg", PG_CONFIG).details
        target = plan(
            problem,
            "lprr:pg",
            PlanConfig(scope=PlanScope.pg(groups=16, important=8), seed=9),
        ).details
        new_map, migration = select_group_migrations(
            problem, grouping, current, target
        )
        # Selection is greedy by nonnegative marginal gain: every
        # object ends at its current or its target node, never a third
        # place, and whole groups move together (PG granularity).
        for obj in problem.object_ids:
            assert new_map.assign(obj) in (
                current.assign(obj),
                target.assign(obj),
            )
        if migration.num_moves:
            assert migration.bytes_moved > 0

    def test_incompatible_maps_rejected(self, problem):
        grouping = build_grouping(problem, 16, important=8)
        current = plan(problem, "lprr:pg", PG_CONFIG).details
        other = plan(
            problem,
            "lprr:pg",
            PlanConfig(scope=PlanScope.pg(groups=8, important=8), seed=3),
        ).details
        with pytest.raises(ValueError):
            select_group_migrations(problem, grouping, current, other)

    def test_repair_moves_only_the_failed_nodes_objects(
        self, problem, scenario
    ):
        _, operations = scenario
        pg_map = plan(problem, "lprr:pg", PG_CONFIG).details
        before = pg_map.expand(problem)
        failed = pg_map.node_ids[int(pg_map.group_nodes[0])]
        outcome = repair_lost_groups(
            problem, pg_map, {failed}, operations=operations
        )
        lost = set(outcome.lost_objects)
        assert lost == {
            obj for obj in problem.object_ids if before.node_of(obj) == failed
        }
        for obj in problem.object_ids:
            if obj in lost:
                assert outcome.placement.node_of(obj) != failed
            else:
                assert outcome.placement.node_of(obj) == before.node_of(obj)
        assert outcome.failed_nodes == (failed,)
        assert 0.0 <= outcome.availability_after <= 1.0
        assert outcome.plan.num_moves == len(lost)

    def test_repair_with_no_failures_is_a_noop(self, problem):
        pg_map = plan(problem, "lprr:pg", PG_CONFIG).details
        outcome = repair_lost_groups(problem, pg_map, set())
        assert outcome.plan.num_moves == 0
        assert outcome.availability_before == 1.0


# ----------------------------------------------------------------------
# Raw-constructor scale path (small-scale stand-in for the bench case)
# ----------------------------------------------------------------------
class TestScalePath:
    def test_pg_plan_over_raw_constructor_problem(self):
        rng = np.random.default_rng(0)
        t, n = 5_000, 6
        sizes = rng.integers(1, 20, size=t).astype(float)
        raw = rng.integers(0, t, size=(4_000, 2))
        raw = raw[raw[:, 0] != raw[:, 1]]
        lo = np.minimum(raw[:, 0], raw[:, 1])
        hi = np.maximum(raw[:, 0], raw[:, 1])
        _, keep = np.unique(lo * t + hi, return_index=True)
        pairs = np.stack([lo[keep], hi[keep]], axis=1)
        problem = PlacementProblem(
            [f"o{i:05d}" for i in range(t)],
            sizes,
            list(range(n)),
            np.full(n, 2.5 * sizes.sum() / n),
            pairs,
            rng.uniform(0.01, 1.0, size=pairs.shape[0]),
            np.minimum(sizes[pairs[:, 0]], sizes[pairs[:, 1]]),
        )
        result = plan(
            problem,
            "lprr:pg",
            PlanConfig(scope=PlanScope.pg(groups=64, important=32), seed=0),
        )
        assert result.placement.assignment.shape == (t,)
        assert result.diagnostics["coarse_objects"] <= 64 + 32
        assert result.placement.is_feasible(tolerance=0.05)
