"""Tests for Section 3.3 extra resource constraints (repro.core.resources)."""

import numpy as np
import pytest

from repro.core.exact import solve_exact
from repro.core.greedy import greedy_placement
from repro.core.lp import build_placement_lp, solve_placement_lp
from repro.core.placement import Placement
from repro.core.problem import PlacementProblem
from repro.core.repair import repair_capacity
from repro.core.resources import ResourceSpec
from repro.exceptions import InfeasibleProblemError, ProblemDefinitionError


def make_problem(bandwidth_budget=10.0):
    """Two correlated pairs; the 'hot' pair saturates bandwidth together."""
    return PlacementProblem.build(
        objects={"hot1": 1.0, "hot2": 1.0, "cold1": 1.0, "cold2": 1.0},
        nodes={0: 4.0, 1: 4.0},
        correlations={("hot1", "hot2"): 0.9, ("cold1", "cold2"): 0.5},
        resources={
            "bandwidth": (
                {"hot1": 8.0, "hot2": 8.0, "cold1": 1.0, "cold2": 1.0},
                bandwidth_budget,
            )
        },
    )


class TestResourceSpec:
    def test_from_mappings_scalar_budget(self):
        spec = ResourceSpec.from_mappings(
            "cpu", {"a": 2.0}, 5.0, ["a", "b"], [0, 1, 2]
        )
        assert spec.loads.tolist() == [2.0, 0.0]
        assert spec.budgets.tolist() == [5.0, 5.0, 5.0]

    def test_from_mappings_per_node_budget(self):
        spec = ResourceSpec.from_mappings(
            "cpu", {}, {0: 1.0, 1: 2.0}, ["a"], [0, 1]
        )
        assert spec.budgets.tolist() == [1.0, 2.0]

    def test_missing_node_budget_rejected(self):
        with pytest.raises(ProblemDefinitionError, match="missing budget"):
            ResourceSpec.from_mappings("cpu", {}, {0: 1.0}, ["a"], [0, 1])

    def test_negative_load_rejected(self):
        with pytest.raises(ProblemDefinitionError, match="nonnegative"):
            ResourceSpec("cpu", np.array([-1.0]), np.array([1.0]))

    def test_empty_name_rejected(self):
        with pytest.raises(ProblemDefinitionError, match="non-empty"):
            ResourceSpec("", np.array([1.0]), np.array([1.0]))

    def test_trivially_infeasible(self):
        spec = ResourceSpec("cpu", np.array([5.0, 5.0]), np.array([4.0, 4.0]))
        assert spec.is_trivially_infeasible()

    def test_subset(self):
        spec = ResourceSpec("cpu", np.array([1.0, 2.0, 3.0]), np.array([9.0]))
        sub = spec.subset(np.array([2, 0]))
        assert sub.loads.tolist() == [3.0, 1.0]
        assert sub.budgets.tolist() == [9.0]


class TestProblemIntegration:
    def test_build_with_resources(self):
        p = make_problem()
        assert len(p.resources) == 1
        assert p.resource("bandwidth").total_load == pytest.approx(18.0)

    def test_unknown_resource_lookup(self):
        with pytest.raises(ProblemDefinitionError, match="unknown resource"):
            make_problem().resource("gpu")

    def test_unknown_object_in_resource(self):
        with pytest.raises(ProblemDefinitionError, match="unknown object"):
            PlacementProblem.build(
                {"a": 1.0}, 2, {}, resources={"cpu": ({"zzz": 1.0}, 5.0)}
            )

    def test_duplicate_resource_rejected(self):
        spec = ResourceSpec("cpu", np.array([1.0]), np.array([5.0, 5.0]))
        with pytest.raises(ProblemDefinitionError, match="duplicate resource"):
            PlacementProblem(
                ["a"],
                np.array([1.0]),
                [0, 1],
                np.array([5.0, 5.0]),
                np.empty((0, 2)),
                np.empty(0),
                np.empty(0),
                resources=[spec, spec],
            )

    def test_trivially_infeasible_via_resource(self):
        p = PlacementProblem.build(
            {"a": 1.0}, {0: 10.0}, {}, resources={"cpu": ({"a": 5.0}, 4.0)}
        )
        assert p.is_trivially_infeasible()

    def test_subproblem_carries_resources(self):
        p = make_problem()
        sub = p.subproblem(["hot1", "cold1"])
        assert sub.resource("bandwidth").loads.tolist() == [8.0, 1.0]

    def test_with_capacities_carries_resources(self):
        p = make_problem().with_capacities(100.0)
        assert len(p.resources) == 1


class TestPlacementEvaluation:
    def test_resource_loads(self):
        p = make_problem()
        placement = Placement.from_mapping(
            p, {"hot1": 0, "hot2": 0, "cold1": 1, "cold2": 1}
        )
        assert placement.resource_loads("bandwidth").tolist() == [16.0, 2.0]

    def test_resource_violation_detected(self):
        p = make_problem(bandwidth_budget=10.0)
        together = Placement.from_mapping(
            p, {"hot1": 0, "hot2": 0, "cold1": 1, "cold2": 1}
        )
        violations = together.resource_violations()
        assert violations["bandwidth"][0] == pytest.approx(6.0)
        assert not together.is_feasible()
        assert together.is_feasible(include_resources=False)

    def test_feasible_when_hot_pair_split(self):
        p = make_problem()
        split = Placement.from_mapping(
            p, {"hot1": 0, "hot2": 1, "cold1": 1, "cold2": 0}
        )
        assert split.is_feasible()


class TestSolversHonorResources:
    def test_lp_adds_resource_rows(self):
        p = make_problem()
        base = build_placement_lp(
            PlacementProblem.build(
                {o: 1.0 for o in p.object_ids},
                {0: 4.0, 1: 4.0},
                {("hot1", "hot2"): 0.9, ("cold1", "cold2"): 0.5},
            )
        )
        with_res = build_placement_lp(p)
        assert with_res.num_constraints == base.num_constraints + 2

    def test_lp_optimum_pays_for_bandwidth_split(self):
        # Without the bandwidth budget the optimum is 0 (co-locate both
        # pairs); with it, the hot pair must split fractionally or fully.
        p = make_problem(bandwidth_budget=10.0)
        frac = solve_placement_lp(p)
        loads = frac.fractions.T @ p.resource("bandwidth").loads
        assert np.all(loads <= 10.0 + 1e-6)

    def test_exact_respects_resource_budget(self):
        p = make_problem(bandwidth_budget=10.0)
        solution = solve_exact(p)
        assert solution.placement.is_feasible()
        # Splitting the hot pair costs 0.9 * min(1,1); cold pair co-locates.
        assert solution.cost == pytest.approx(0.9)

    def test_exact_without_budget_colocates(self):
        p = make_problem(bandwidth_budget=100.0)
        assert solve_exact(p).cost == pytest.approx(0.0)

    def test_greedy_respects_resource_budget(self):
        p = make_problem(bandwidth_budget=10.0)
        placement = greedy_placement(p)
        assert placement.resource_violations() == {}

    def test_repair_avoids_resource_violating_destinations(self):
        p = PlacementProblem.build(
            {"a": 3.0, "b": 3.0, "c": 1.0},
            {0: 4.0, 1: 4.0, 2: 4.0},
            {},
            resources={"cpu": ({"a": 5.0, "b": 1.0, "c": 5.0}, 6.0)},
        )
        # Node 0 overloaded by size; moving 'a' to node 2 would break
        # cpu (5+5 > 6), so 'a' must go to node 1.
        placement = Placement.from_mapping(p, {"a": 0, "b": 0, "c": 2})
        repaired = repair_capacity(placement)
        assert repaired.is_feasible()
        assert repaired.node_of("a") == 1

    def test_infeasible_resource_budget_raises_in_lp(self):
        p = PlacementProblem.build(
            {"a": 1.0}, {0: 10.0}, {}, resources={"cpu": ({"a": 9.0}, 4.0)}
        )
        with pytest.raises(InfeasibleProblemError):
            solve_placement_lp(p)
