"""Flight recorder, journal analytics, and the ``repro trace`` CLI."""

import json

import pytest

from repro import obs
from repro.cli import main
from repro.obs.analytics import (
    _attempts_for_period,
    cache_summary,
    chaos_summary,
    explain_period,
    fallback_summary,
    online_periods,
    render_journal_report,
    serve_summary,
)
from repro.obs.journal import JOURNAL_SCHEMA, Journal, load_journal


@pytest.fixture(autouse=True)
def _no_ambient_instrumentation():
    """Isolate each test from any session-wide instrumentation."""
    previous = obs.current()
    obs.disable()
    yield
    if previous is not None:
        obs.enable(previous)
    else:
        obs.disable()


class TestJournal:
    def test_records_are_stamped_in_order(self):
        journal = Journal()
        journal.record("a.one", value=1)
        journal.record("a.two", value=2)
        records = journal.records()
        assert [r["seq"] for r in records] == [0, 1]
        assert [r["kind"] for r in records] == ["a.one", "a.two"]

    def test_record_cap_evicts_oldest_first(self):
        journal = Journal(max_records=3)
        for i in range(10):
            journal.record("tick", i=i)
        assert len(journal) == 3
        assert journal.dropped == 7
        assert [r["i"] for r in journal.records()] == [7, 8, 9]
        # the logical clock keeps advancing across evictions
        assert journal.records()[-1]["seq"] == 9

    def test_byte_cap_evicts_but_keeps_latest(self):
        journal = Journal(max_bytes=200)
        for i in range(50):
            journal.record("tick", payload="x" * 40)
        assert journal.total_bytes <= 200
        assert journal.dropped > 0
        assert len(journal) >= 1  # the newest record always survives

    def test_oversized_single_record_survives(self):
        journal = Journal(max_bytes=10)
        journal.record("huge", payload="y" * 1000)
        assert len(journal) == 1

    def test_unencodable_record_fails_at_call_site(self):
        journal = Journal()
        with pytest.raises(TypeError):
            journal.record("bad", payload=object())
        assert len(journal) == 0 or journal.records()[-1]["kind"] != "bad"

    def test_header_reports_retention(self):
        journal = Journal(max_records=2)
        for i in range(5):
            journal.record("tick", i=i)
        header = journal.header()
        assert header["schema"] == JOURNAL_SCHEMA
        assert header["kind"] == "journal.header"
        assert header["records"] == 2
        assert header["dropped"] == 3

    def test_to_jsonl_is_deterministic_and_header_first(self):
        def build():
            journal = Journal()
            journal.record("b", zebra=1, alpha=2)
            journal.record("a", value=0.5)
            return journal.to_jsonl()

        text = build()
        assert text == build()
        first = json.loads(text.splitlines()[0])
        assert first["kind"] == "journal.header"
        # canonical encoding: sorted keys, no spaces
        assert '"alpha":2,"kind":"b"' in text

    def test_reset_restarts_the_logical_clock(self):
        journal = Journal()
        journal.record("x")
        journal.reset()
        assert len(journal) == 0
        assert journal.record("y")["seq"] == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            Journal(max_records=0)
        with pytest.raises(ValueError):
            Journal(max_bytes=0)
        Journal(max_bytes=None)  # byte cap is optional

    def test_write_and_load_round_trip(self, tmp_path):
        journal = Journal()
        journal.record("one", t=0.5)
        journal.record("two", nested={"a": [1, 2]})
        path = tmp_path / "journal.jsonl"
        journal.write(path)
        records = load_journal(path)
        assert records[0]["kind"] == "journal.header"
        assert records[1:] == journal.records()

    def test_load_rejects_bad_json(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text('{"kind":"ok"}\nnot json\n')
        with pytest.raises(ValueError, match="not valid JSON"):
            load_journal(path)

    def test_load_rejects_non_object_lines(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text("[1,2,3]\n")
        with pytest.raises(ValueError, match="must be objects"):
            load_journal(path)

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(
            '{"kind":"journal.header","schema":"repro.journal/v99"}\n'
        )
        with pytest.raises(ValueError, match="unsupported journal schema"):
            load_journal(path)


class TestRecordHelper:
    def test_noop_when_disabled(self):
        assert obs.record("anything", value=1) is None

    def test_noop_without_a_journal(self):
        obs.enable(obs.Instrumentation())
        assert obs.record("anything", value=1) is None

    def test_routes_to_the_active_journal(self):
        journal = Journal()
        obs.enable(obs.Instrumentation(journal=journal))
        stored = obs.record("event", value=1)
        assert stored["seq"] == 0
        assert journal.records("event") == [stored]

    def test_planning_populates_the_journal(self):
        from repro.core.problem import PlacementProblem
        from repro.core.strategies import plan

        problem = PlacementProblem.build(
            objects={"a": 2.0, "b": 2.0, "c": 2.0, "d": 2.0},
            nodes={0: 5.0, 1: 5.0},
            correlations={("a", "b"): 0.4, ("c", "d"): 0.4},
        )
        journal = Journal()
        obs.enable(obs.Instrumentation(journal=journal))
        plan(problem, "greedy")
        results = journal.records("plan.result")
        assert len(results) == 1
        assert results[0]["planner"] == "greedy"
        assert isinstance(results[0]["feasible"], bool)
        assert isinstance(results[0]["cost"], float)


def _synthetic_online_journal() -> list[dict]:
    """A hand-built journal covering the analytics code paths."""
    journal = Journal()
    journal.record(
        "online.run.start",
        nodes=4,
        window_s=300.0,
        seed=3,
        thresholds={
            "churn": 0.4,
            "inflation": 1.25,
            "top_k": 32,
            "min_operations": 20,
        },
        budget_fraction=0.1,
        memory_cells=512,
    )
    journal.record(
        "online.period",
        t=0.0,
        period=0,
        start_s=0.0,
        end_s=300.0,
        operations=5,
        tracked_pairs=12,
        action="observe",
        drift=None,
        planner=None,
        moves=0,
        bytes_moved=0.0,
        budget_bytes=None,
        cost_estimate=10.0,
    )
    journal.record("plan.attempt", step="lp", outcome="failed", detail="infeasible")
    journal.record("plan.attempt", step="greedy", outcome="ok", detail=None)
    journal.record(
        "plan.fallback", delegate="greedy", degraded=True, chain=[]
    )
    journal.record(
        "online.period",
        t=300.0,
        period=1,
        start_s=300.0,
        end_s=600.0,
        operations=80,
        tracked_pairs=30,
        action="replan",
        drift={
            "replan": True,
            "judged": True,
            "churn": 0.638,
            "cost_now": 25.0,
            "cost_reference": 10.0,
            "inflation": 2.5,
            "reasons": ["churn", "inflation"],
        },
        planner="greedy",
        moves=6,
        bytes_moved=6.0,
        budget_bytes=8.0,
        cost_estimate=12.0,
    )
    journal.record("cache.load", cache_kind="plan", key="k1", outcome="miss")
    journal.record("cache.store", cache_kind="plan", key="k1")
    journal.record("cache.load", cache_kind="plan", key="k1", outcome="hit")
    journal.record("cache.load", cache_kind="plan", key="k2", outcome="corrupt")
    return [journal.header()] + journal.records()


class TestAnalytics:
    def test_fallback_summary(self):
        records = _synthetic_online_journal()
        summary = fallback_summary(records)
        assert summary["chains"] == 1
        assert summary["degraded"] == 1
        assert summary["attempts"] == {"greedy:ok": 1, "lp:failed": 1}
        assert summary["delegates"] == {"greedy": 1}

    def test_cache_summary_counts_corrupt_as_miss(self):
        stats = cache_summary(_synthetic_online_journal())["plan"]
        assert stats == {"hit": 1, "miss": 2, "corrupt": 1, "store": 1}

    def test_online_periods_in_order(self):
        periods = online_periods(_synthetic_online_journal())
        assert [p["period"] for p in periods] == [0, 1]

    def test_chaos_summary_absent_without_chaos_records(self):
        assert chaos_summary(_synthetic_online_journal()) is None

    def test_chaos_summary_rolls_up(self):
        journal = Journal()
        journal.record("chaos.start", operations=100, events=2)
        journal.record("chaos.fault", t=1.0, epoch=0, fault="crash", nodes=[1])
        journal.record("chaos.epoch", t=1.0, epoch=0, down=[1], unserved=4, repaired=True)
        journal.record(
            "chaos.end",
            epochs=1,
            availability_single=0.96,
            availability_replicated=1.0,
            repair_moves=3,
            repair_bytes=3.0,
        )
        summary = chaos_summary(journal.records())
        assert summary["faults"] == {"crash": 1}
        assert summary["unserved_operations"] == 4
        assert summary["repaired_epochs"] == 1
        assert summary["availability_replicated"] == 1.0

    def test_serve_summary_absent_without_serve_records(self):
        assert serve_summary(_synthetic_online_journal()) is None

    def test_serve_summary_rolls_up(self):
        journal = Journal()
        journal.record("serve.start", mode="batched", seed=0, queries=8)
        journal.record("serve.batch", seq=0, size=3, unique=2, version=1)
        journal.record("serve.shed", reason="throttled")
        journal.record("serve.swap", version=2, planner="stream:greedy")
        journal.record("serve.batch", seq=1, size=5, unique=4, version=2)
        journal.record(
            "serve.end",
            mode="batched",
            completed=8,
            shed=1,
            swaps=1,
            throughput_qps=123.456,
            p99_ms=9.876,
        )
        summary = serve_summary(journal.records())
        assert summary["batches"] == 2
        assert summary["batched_queries"] == 8
        assert summary["unique_executions"] == 6
        assert summary["queries_by_version"] == {"1": 3, "2": 5}
        assert summary["shed"] == {"throttled": 1}
        assert summary["swaps"] == [
            {"version": 2, "planner": "stream:greedy"}
        ]
        assert summary["throughput_qps"] == 123.456
        assert summary["p99_ms"] == 9.876

        text = render_journal_report(journal.records())
        assert "serve: 2 batches, 8 queries (6 unique executions)" in text
        assert "queries by plan version: v1=3, v2=5" in text
        assert "swap -> version 2 (planner stream:greedy)" in text
        assert "shed: throttled=1" in text
        assert "throughput: 123.456 qps, p99 9.876ms" in text

    def test_attempts_attach_to_the_following_period(self):
        records = _synthetic_online_journal()
        target = next(
            r for r in records if r.get("kind") == "online.period" and r["period"] == 1
        )
        attempts = _attempts_for_period(records, target["seq"])
        assert [a["step"] for a in attempts] == ["lp", "greedy"]
        first = next(
            r for r in records if r.get("kind") == "online.period" and r["period"] == 0
        )
        assert _attempts_for_period(records, first["seq"]) == []

    def test_explain_period_renders_the_decision(self):
        text = explain_period(_synthetic_online_journal(), 1)
        assert "action: replan" in text
        assert "drift churn: 0.638 (threshold 0.4) EXCEEDED" in text
        assert "drift inflation: 2.5 (threshold 1.25) EXCEEDED" in text
        assert "replan requested (churn, inflation)" in text
        assert "lp" in text and "failed (infeasible)" in text
        assert "migration: 6 moves, 6.0 bytes (budget 8.0)" in text

    def test_explain_period_pre_bootstrap(self):
        text = explain_period(_synthetic_online_journal(), 0)
        assert "drift: not assessed (pre-bootstrap)" in text

    def test_explain_unknown_period_raises(self):
        with pytest.raises(ValueError, match="no online.period record"):
            explain_period(_synthetic_online_journal(), 99)

    def test_render_journal_report_sections(self):
        text = render_journal_report(_synthetic_online_journal())
        assert f"schema {JOURNAL_SCHEMA}" in text
        assert "record kinds:" in text
        assert "fallback chains: 1 (1 degraded)" in text
        assert "plan cache:" in text
        assert "online: 2 periods" in text
        assert "period   1 replan" in text


class TestTraceCLI:
    ONLINE = [
        "online",
        "--vocabulary", "120",
        "--topics", "15",
        "--duration", "1200",
        "--window", "300",
        "--qps", "0.5",
        "--seed", "3",
    ]

    def test_journal_byte_identical_across_runs(self, tmp_path, capsys):
        first = tmp_path / "one.jsonl"
        second = tmp_path / "two.jsonl"
        assert main(self.ONLINE + ["--journal", str(first)]) == 0
        assert main(self.ONLINE + ["--journal", str(second)]) == 0
        assert first.read_bytes() == second.read_bytes()
        records = load_journal(first)
        kinds = {r["kind"] for r in records}
        assert {"online.run.start", "online.period", "online.run.end"} <= kinds

    def test_trace_reports_on_a_real_journal(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        main(self.ONLINE + ["--journal", str(path)])
        capsys.readouterr()
        assert main(["trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "record kinds:" in out
        assert "online:" in out

    def test_trace_explains_a_period(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        main(self.ONLINE + ["--journal", str(path)])
        periods = online_periods(load_journal(path))
        capsys.readouterr()
        assert main(["trace", str(path), "--period", str(periods[0]["period"])]) == 0
        out = capsys.readouterr().out
        assert f"period {periods[0]['period']}" in out
        assert "operations:" in out

    def test_trace_reads_metrics_documents(self, tmp_path, capsys):
        path = tmp_path / "metrics.json"
        main(
            [
                "gen-queries", str(tmp_path / "q.txt"),
                "--count", "200", "--vocabulary", "100", "--seed", "1",
            ]
        )
        main(
            [
                "place", str(tmp_path / "q.txt"), str(tmp_path / "p.json"),
                "--strategy", "greedy", "--metrics-out", str(path),
            ]
        )
        capsys.readouterr()
        assert main(["trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "phase attribution" in out
        assert "critical path:" in out

    def test_trace_period_rejects_metrics_documents(self, tmp_path, capsys):
        path = tmp_path / "metrics.json"
        path.write_text('{"spans": []}')
        assert main(["trace", str(path), "--period", "0"]) == 2
        assert "--period needs a journal" in capsys.readouterr().err

    def test_trace_missing_file(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "absent.jsonl")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_trace_unrecognized_artifact(self, tmp_path, capsys):
        path = tmp_path / "other.json"
        path.write_text('{"hello": 1}')
        assert main(["trace", str(path)]) == 2
        assert "neither a journal" in capsys.readouterr().err

    def test_chrome_trace_export_from_cli(self, tmp_path, capsys):
        main(
            [
                "gen-queries", str(tmp_path / "q.txt"),
                "--count", "200", "--vocabulary", "100", "--seed", "1",
            ]
        )
        trace_path = tmp_path / "chrome.json"
        main(
            [
                "place", str(tmp_path / "q.txt"), str(tmp_path / "p.json"),
                "--strategy", "greedy", "--trace-out", str(trace_path),
            ]
        )
        doc = json.loads(trace_path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert "place" in names
