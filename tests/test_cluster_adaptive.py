"""Tests for the drift-triggered adaptive placer (repro.cluster.adaptive)."""

import numpy as np
import pytest

from repro.cluster.adaptive import AdaptivePlacer


def make_trace(pairs, repetitions=50):
    """A trace hitting each pair `repetitions` times."""
    trace = []
    for pair in pairs:
        trace.extend([tuple(pair)] * repetitions)
    return trace


SIZES = {f"o{i}": 1.0 for i in range(8)}
PERIOD1_PAIRS = [("o0", "o1"), ("o2", "o3"), ("o4", "o5"), ("o6", "o7")]


@pytest.fixture
def placer():
    placer = AdaptivePlacer(
        SIZES,
        num_nodes=4,
        drift_threshold=0.3,
        budget_fraction=1.0,
        correlation_mode="cooccurrence",
        top_pairs=10,
    )
    placer.bootstrap(make_trace(PERIOD1_PAIRS))
    return placer


class TestBootstrap:
    def test_initial_placement_colocates_pairs(self, placer):
        placement = placer.placement
        for a, b in PERIOD1_PAIRS:
            assert placement.node_of(a) == placement.node_of(b)

    def test_placement_before_bootstrap_raises(self):
        placer = AdaptivePlacer(SIZES, 4)
        with pytest.raises(RuntimeError, match="bootstrap"):
            _ = placer.placement
        with pytest.raises(RuntimeError, match="bootstrap"):
            placer.observe_period([])


class TestObservation:
    def test_stable_period_is_noop(self, placer):
        before = placer.placement.assignment.copy()
        decision = placer.observe_period(make_trace(PERIOD1_PAIRS))
        assert not decision.replanned
        assert decision.plan is None
        assert decision.unstable_fraction <= 0.3
        assert np.array_equal(placer.placement.assignment, before)

    def test_drifted_period_triggers_replan(self, placer):
        # All four pairs re-shuffle: massive drift.
        drifted = [("o0", "o2"), ("o1", "o3"), ("o4", "o6"), ("o5", "o7")]
        decision = placer.observe_period(make_trace(drifted))
        assert decision.replanned
        assert decision.plan is not None
        assert decision.unstable_fraction > 0.3
        placement = placer.placement
        for a, b in drifted:
            assert placement.node_of(a) == placement.node_of(b)

    def test_replan_respects_budget(self):
        placer = AdaptivePlacer(
            SIZES,
            num_nodes=4,
            drift_threshold=0.1,
            budget_fraction=0.125,  # one object's worth
            correlation_mode="cooccurrence",
        )
        placer.bootstrap(make_trace(PERIOD1_PAIRS))
        drifted = [("o0", "o2"), ("o1", "o3"), ("o4", "o6"), ("o5", "o7")]
        decision = placer.observe_period(make_trace(drifted))
        assert decision.replanned
        assert decision.plan.bytes_moved <= 0.125 * sum(SIZES.values()) + 1e-9

    def test_reference_updates_after_replan(self, placer):
        drifted = [("o0", "o2"), ("o1", "o3"), ("o4", "o6"), ("o5", "o7")]
        placer.observe_period(make_trace(drifted))
        # Repeating the same (formerly drifted) workload is now stable.
        decision = placer.observe_period(make_trace(drifted))
        assert not decision.replanned

    def test_two_smallest_mode(self):
        sizes = {"small": 1.0, "mid": 2.0, "big": 9.0}
        placer = AdaptivePlacer(
            sizes, num_nodes=2, correlation_mode="two_smallest",
            drift_threshold=0.3, top_pairs=5,
        )
        placer.bootstrap([("small", "mid", "big")] * 40)
        placement = placer.placement
        # two-smallest reduction correlates (small, mid) only.
        assert placement.node_of("small") == placement.node_of("mid")


class TestValidation:
    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            AdaptivePlacer(SIZES, 2, drift_threshold=1.5)

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            AdaptivePlacer(SIZES, 2, budget_fraction=-0.1)

    def test_invalid_mode(self):
        with pytest.raises(ValueError, match="correlation mode"):
            AdaptivePlacer(SIZES, 2, correlation_mode="psychic")

    def test_custom_planner_used(self):
        from repro.core.hashing import random_hash_placement

        placer = AdaptivePlacer(SIZES, 4, planner=random_hash_placement)
        placement = placer.bootstrap(make_trace(PERIOD1_PAIRS))
        expected = random_hash_placement(
            placer._problem_for(placer._reference)
        )
        assert np.array_equal(placement.assignment, expected.assignment)


class TestEstimatorBackend:
    def test_sketch_backend_drives_the_loop(self):
        from repro.online import SketchCorrelationEstimator

        placer = AdaptivePlacer(
            SIZES,
            num_nodes=4,
            drift_threshold=0.3,
            budget_fraction=1.0,
            correlation_mode="cooccurrence",
            top_pairs=10,
            estimator=lambda: SketchCorrelationEstimator(
                width=256, depth=4, heavy_hitters=16, seed=0
            ),
        )
        placer.bootstrap(make_trace(PERIOD1_PAIRS))
        for a, b in PERIOD1_PAIRS:
            assert placer.placement.node_of(a) == placer.placement.node_of(b)
        decision = placer.observe_period(make_trace(PERIOD1_PAIRS))
        assert not decision.replanned

    def test_sketch_backend_matches_exact_on_sparse_trace(self):
        from repro.online import SketchCorrelationEstimator

        trace = make_trace(PERIOD1_PAIRS)
        exact = AdaptivePlacer(SIZES, 4, correlation_mode="cooccurrence")
        sketched = AdaptivePlacer(
            SIZES,
            4,
            correlation_mode="cooccurrence",
            estimator=lambda: SketchCorrelationEstimator(
                width=1024, depth=4, heavy_hitters=64, seed=0
            ),
        )
        assert sketched._estimate(trace) == exact._estimate(trace)

    def test_default_backend_unchanged(self):
        placer = AdaptivePlacer(SIZES, 4, correlation_mode="cooccurrence")
        assert placer.estimator_factory is None
        from repro.core.correlation import cooccurrence_correlations

        trace = make_trace(PERIOD1_PAIRS)
        assert placer._estimate(trace) == cooccurrence_correlations(trace)

    def test_generator_trace_accepted(self):
        placer = AdaptivePlacer(SIZES, 4, correlation_mode="cooccurrence")
        placer.bootstrap(op for op in make_trace(PERIOD1_PAIRS))
        decision = placer.observe_period(op for op in make_trace(PERIOD1_PAIRS))
        assert not decision.replanned
