"""Tests for the self-contained simplex backend, cross-checked vs HiGHS."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SolverError
from repro.lpsolve import LinearProgram, LPStatus, Sense, solve_simplex


def make_lp(objective, rows):
    """Helper: build an LP with default-bounded variables."""
    lp = LinearProgram()
    variables = [lp.add_variable(objective=c) for c in objective]
    for coeffs, sense, rhs in rows:
        lp.add_constraint(list(zip(variables, coeffs)), sense, rhs)
    return lp


class TestSimplexBasics:
    def test_matches_known_optimum(self):
        # min x + 2y s.t. x + y >= 3, y >= 1  ->  x=2, y=1, obj=4.
        lp = make_lp([1.0, 2.0], [([1, 1], Sense.GE, 3.0), ([0, 1], Sense.GE, 1.0)])
        result = solve_simplex(lp)
        assert result.is_optimal
        assert result.objective == pytest.approx(4.0)
        assert result.x == pytest.approx([2.0, 1.0])

    def test_equality_constraints(self):
        lp = make_lp([1.0, 1.0], [([1, 1], Sense.EQ, 5.0), ([1, -1], Sense.EQ, 1.0)])
        result = solve_simplex(lp)
        assert result.objective == pytest.approx(5.0)
        assert result.x == pytest.approx([3.0, 2.0])

    def test_upper_bounds_respected(self):
        lp = LinearProgram()
        x = lp.add_variable(objective=-1.0, upper=4.0)
        result = solve_simplex(lp)
        assert result.objective == pytest.approx(-4.0)
        assert result.x[0] == pytest.approx(4.0)

    def test_shifted_lower_bounds(self):
        lp = LinearProgram()
        x = lp.add_variable(objective=1.0, lower=-3.0, upper=10.0)
        result = solve_simplex(lp)
        assert result.objective == pytest.approx(-3.0)

    def test_infeasible(self):
        lp = make_lp([1.0], [([1], Sense.LE, 1.0), ([1], Sense.GE, 2.0)])
        assert solve_simplex(lp).status is LPStatus.INFEASIBLE

    def test_unbounded(self):
        lp = make_lp([-1.0], [])
        assert solve_simplex(lp).status is LPStatus.UNBOUNDED

    def test_empty_program(self):
        assert solve_simplex(LinearProgram()).is_optimal

    def test_infinite_lower_bound_rejected(self):
        lp = LinearProgram()
        lp.add_variable(lower=float("-inf"))
        with pytest.raises(SolverError, match="finite lower bounds"):
            solve_simplex(lp)

    def test_negative_rhs_handled(self):
        # -x <= -2  <=>  x >= 2.
        lp = make_lp([1.0], [([-1.0], Sense.LE, -2.0)])
        result = solve_simplex(lp)
        assert result.objective == pytest.approx(2.0)

    def test_degenerate_program_terminates(self):
        # Multiple redundant constraints at the same vertex.
        lp = make_lp(
            [1.0, 1.0],
            [
                ([1, 1], Sense.GE, 2.0),
                ([2, 2], Sense.GE, 4.0),
                ([1, 0], Sense.GE, 1.0),
                ([1, 0], Sense.LE, 1.0),
            ],
        )
        result = solve_simplex(lp)
        assert result.objective == pytest.approx(2.0)


class TestSimplexAgreesWithHighs:
    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_random_programs_agree(self, data):
        """On random feasible-or-not LPs both backends agree on status
        and (when optimal) on the objective value."""
        rng_seed = data.draw(st.integers(0, 2**31 - 1))
        rng = np.random.default_rng(rng_seed)
        n = data.draw(st.integers(1, 5))
        m = data.draw(st.integers(1, 6))
        objective = rng.uniform(0.1, 2.0, n)  # positive -> bounded below
        lp = LinearProgram()
        variables = [lp.add_variable(objective=c, upper=10.0) for c in objective]
        for _ in range(m):
            coeffs = rng.uniform(-1.0, 1.0, n)
            sense = (Sense.LE, Sense.GE, Sense.EQ)[int(rng.integers(3))]
            rhs = float(rng.uniform(-2.0, 4.0))
            lp.add_constraint(list(zip(variables, coeffs)), sense, rhs)

        simplex = solve_simplex(lp)
        highs = lp.solve(backend="highs")
        assert simplex.status == highs.status
        if highs.is_optimal:
            assert simplex.objective == pytest.approx(highs.objective, abs=1e-6)

    def test_moderate_size_agreement(self):
        rng = np.random.default_rng(7)
        n = 20
        lp = LinearProgram()
        variables = [
            lp.add_variable(objective=float(c), upper=5.0)
            for c in rng.uniform(0.5, 3.0, n)
        ]
        for _ in range(15):
            support = rng.choice(n, size=4, replace=False)
            lp.add_constraint(
                [(variables[i], float(rng.uniform(0.1, 1.0))) for i in support],
                Sense.GE,
                float(rng.uniform(0.5, 2.0)),
            )
        simplex = solve_simplex(lp)
        highs = lp.solve()
        assert simplex.objective == pytest.approx(highs.objective, abs=1e-6)
