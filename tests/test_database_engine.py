"""Tests for the distributed database engine and workload generator."""

import numpy as np
import pytest

from repro.database.engine import DistributedDatabase
from repro.database.queries import AggregateQuery, JoinQuery
from repro.database.table import Table
from repro.database.workload import (
    JOIN_KEY,
    SchemaConfig,
    generate_queries,
    generate_schema,
)


@pytest.fixture
def tables():
    return [
        Table("small", {"key": np.array([1, 2]), "value": np.array([1, 2])}),
        Table(
            "mid",
            {"key": np.array([1, 2, 3, 4]), "value": np.array([10, 20, 30, 40])},
        ),
        Table(
            "big",
            {
                "key": np.arange(10),
                "value": np.arange(10) * 100,
            },
        ),
    ]


def db(tables, mapping):
    return DistributedDatabase(tables, mapping)


class TestQueryValidation:
    def test_join_needs_two_tables(self):
        with pytest.raises(ValueError, match="two tables"):
            JoinQuery(("only",), on="key")

    def test_join_tables_distinct(self):
        with pytest.raises(ValueError, match="distinct"):
            JoinQuery(("a", "a"), on="key")

    def test_aggregate_needs_tables(self):
        with pytest.raises(ValueError, match="at least one"):
            AggregateQuery(())


class TestJoinExecution:
    def test_colocated_join_free(self, tables):
        engine = db(tables, {"small": 0, "mid": 0, "big": 0})
        result = engine.execute_join(JoinQuery(("small", "mid"), on="key"))
        assert result.is_local
        assert result.rows == 2  # keys 1 and 2 both present

    def test_split_join_ships_smaller_table(self, tables):
        engine = db(tables, {"small": 0, "mid": 1, "big": 2})
        result = engine.execute_join(JoinQuery(("small", "mid"), on="key"))
        assert result.bytes_transferred == tables[0].size_bytes
        assert result.hops == 1

    def test_three_way_join_pipelines(self, tables):
        engine = db(tables, {"small": 0, "mid": 1, "big": 1})
        result = engine.execute_join(JoinQuery(("big", "mid", "small"), on="key"))
        # small (smallest) ships to mid's node; big is already there.
        assert result.hops == 1
        assert result.bytes_transferred == tables[0].size_bytes

    def test_join_value_independent_of_placement(self, tables):
        query = JoinQuery(("small", "mid"), on="key", aggregate_column="value")
        local = db(tables, {"small": 0, "mid": 0, "big": 0}).execute_join(query)
        remote = db(tables, {"small": 0, "mid": 1, "big": 2}).execute_join(query)
        assert local.value == remote.value

    def test_row_count_default_aggregate(self, tables):
        engine = db(tables, {"small": 0, "mid": 0, "big": 0})
        result = engine.execute_join(JoinQuery(("small", "big"), on="key"))
        assert result.value == result.rows


class TestAggregateExecution:
    def test_scatter_gather_free(self, tables):
        engine = db(tables, {"small": 0, "mid": 1, "big": 2})
        result = engine.execute_aggregate(
            AggregateQuery(("small", "mid", "big"), "value", "sum")
        )
        assert result.bytes_transferred == 0
        assert result.value == 3 + 100 + sum(range(10)) * 100

    def test_missing_column_skipped(self, tables):
        extra = Table("nocol", {"key": np.array([1])})
        engine = db(tables + [extra], {"small": 0, "mid": 0, "big": 0, "nocol": 1})
        result = engine.execute_aggregate(AggregateQuery(("small", "nocol"), "value"))
        assert result.value == 3.0

    def test_min_across_tables(self, tables):
        engine = db(tables, {"small": 0, "mid": 0, "big": 0})
        result = engine.execute_aggregate(
            AggregateQuery(("small", "mid"), "value", "min")
        )
        assert result.value == 1.0


class TestEngineInfrastructure:
    def test_missing_assignment_rejected(self, tables):
        with pytest.raises(ValueError, match="without a node"):
            DistributedDatabase(tables, {"small": 0})

    def test_unknown_table(self, tables):
        engine = db(tables, {"small": 0, "mid": 0, "big": 0})
        with pytest.raises(KeyError, match="unknown table"):
            engine.execute_join(JoinQuery(("small", "ghost"), on="key"))

    def test_log_statistics(self, tables):
        engine = db(tables, {"small": 0, "mid": 0, "big": 1})
        stats = engine.execute_log(
            [
                JoinQuery(("small", "mid"), on="key"),
                JoinQuery(("small", "big"), on="key"),
                AggregateQuery(("small",), "value"),
            ]
        )
        assert stats.queries == 3
        assert stats.local_queries == 2
        assert stats.total_bytes == tables[0].size_bytes

    def test_unsupported_query_type(self, tables):
        engine = db(tables, {"small": 0, "mid": 0, "big": 0})
        with pytest.raises(TypeError):
            engine.execute_log(["not a query"])

    def test_placement_problem_bridge(self, tables):
        engine = db(tables, {"small": 0, "mid": 0, "big": 0})
        queries = [JoinQuery(("small", "mid"), on="key")] * 4
        problem = engine.placement_problem(queries, 3)
        assert problem.num_objects == 3
        assert problem.num_pairs == 1
        assert problem.size_of("small") == tables[0].size_bytes


class TestWorkloadGeneration:
    def test_schema_shape(self):
        config = SchemaConfig(num_groups=3, dimensions_per_group=2, seed=0)
        tables = generate_schema(config)
        assert len(tables) == 3 * (1 + 2)
        names = {t.name for t in tables}
        assert "fact_0" in names and "dim_2_1" in names

    def test_queries_reference_real_tables(self):
        config = SchemaConfig(num_groups=3, dimensions_per_group=2, seed=0)
        names = {t.name for t in generate_schema(config)}
        queries = generate_queries(config, num_queries=200, seed=1)
        for q in queries:
            assert set(q.objects) <= names

    def test_mixture_of_query_types(self):
        config = SchemaConfig(num_groups=3, seed=0)
        queries = generate_queries(
            config, num_queries=400, aggregate_fraction=0.3, seed=2
        )
        joins = sum(1 for q in queries if isinstance(q, JoinQuery))
        aggs = sum(1 for q in queries if isinstance(q, AggregateQuery))
        assert joins > 0 and aggs > 0
        assert aggs / len(queries) == pytest.approx(0.3, abs=0.1)

    def test_group_locality_dominates(self):
        config = SchemaConfig(num_groups=4, seed=0)
        queries = generate_queries(
            config, num_queries=500, cross_group_fraction=0.0, seed=3
        )
        for q in queries:
            if isinstance(q, JoinQuery):
                groups = {name.split("_")[1] for name in q.tables}
                assert len(groups) == 1

    def test_deterministic(self):
        config = SchemaConfig(num_groups=3, seed=5)
        a = generate_queries(config, num_queries=50, seed=7)
        b = generate_queries(config, num_queries=50, seed=7)
        assert [q.objects for q in a] == [q.objects for q in b]

    def test_invalid_fractions(self):
        with pytest.raises(ValueError):
            generate_queries(SchemaConfig(), cross_group_fraction=1.5)

    def test_end_to_end_lprr_beats_hash(self):
        from repro.core import LPRRPlanner, random_hash_placement

        config = SchemaConfig(num_groups=5, fact_rows=400, seed=0)
        tables = generate_schema(config)
        queries = generate_queries(config, num_queries=300, seed=1)
        bootstrap = DistributedDatabase(tables, {t.name: 0 for t in tables})
        problem = bootstrap.placement_problem(queries, 4, min_support=2)

        def replay(placement):
            mapping = {str(k): v for k, v in placement.to_mapping().items()}
            return DistributedDatabase(tables, mapping).execute_log(queries).total_bytes

        hash_bytes = replay(random_hash_placement(problem))
        lprr_bytes = replay(LPRRPlanner(seed=0).plan(problem).placement)
        assert lprr_bytes < hash_bytes
