"""Tests for correlation estimators (repro.core.correlation)."""

import pytest

from repro.core.correlation import (
    CorrelationEstimator,
    cooccurrence_correlations,
    operation_pairs,
    two_smallest_correlations,
    union_largest_correlations,
)


class TestCooccurrence:
    def test_two_object_operations_exact(self):
        trace = [("a", "b"), ("a", "b"), ("a", "c"), ("b", "c")]
        corr = cooccurrence_correlations(trace)
        assert corr[("a", "b")] == pytest.approx(0.5)
        assert corr[("a", "c")] == pytest.approx(0.25)
        assert corr[("b", "c")] == pytest.approx(0.25)

    def test_multi_object_operation_counts_all_pairs(self):
        corr = cooccurrence_correlations([("a", "b", "c")])
        assert len(corr) == 3
        assert all(v == 1.0 for v in corr.values())

    def test_duplicates_within_operation_ignored(self):
        corr = cooccurrence_correlations([("a", "a", "b")])
        assert corr == {("a", "b"): 1.0}

    def test_single_object_operations_dilute(self):
        corr = cooccurrence_correlations([("a",), ("a", "b")])
        assert corr[("a", "b")] == pytest.approx(0.5)

    def test_min_support_filters(self):
        trace = [("a", "b"), ("a", "b"), ("c", "d")]
        corr = cooccurrence_correlations(trace, min_support=2)
        assert ("a", "b") in corr
        assert ("c", "d") not in corr

    def test_empty_trace(self):
        assert cooccurrence_correlations([]) == {}

    def test_pairs_canonicalized(self):
        corr = cooccurrence_correlations([("b", "a"), ("a", "b")])
        assert corr == {("a", "b"): 1.0}


class TestTwoSmallest:
    SIZES = {"small": 1.0, "mid": 5.0, "big": 50.0}

    def test_three_object_operation_keeps_two_smallest(self):
        corr = two_smallest_correlations([("small", "mid", "big")], self.SIZES)
        assert corr == {("mid", "small"): 1.0}

    def test_two_object_operation_unchanged(self):
        corr = two_smallest_correlations([("mid", "big")], self.SIZES)
        assert corr == {("big", "mid"): 1.0}

    def test_unknown_objects_ignored(self):
        corr = two_smallest_correlations([("small", "???", "mid")], self.SIZES)
        assert corr == {("mid", "small"): 1.0}

    def test_operations_without_two_known_objects_count_in_denominator(self):
        corr = two_smallest_correlations([("small",), ("small", "mid")], self.SIZES)
        assert corr[("mid", "small")] == pytest.approx(0.5)

    def test_size_ties_broken_deterministically(self):
        sizes = {"a": 1.0, "b": 1.0, "c": 1.0}
        first = two_smallest_correlations([("a", "b", "c")], sizes)
        second = two_smallest_correlations([("c", "b", "a")], sizes)
        assert first == second


class TestUnionLargest:
    SIZES = {"s": 1.0, "m": 5.0, "l": 50.0}

    def test_largest_paired_with_each_other(self):
        corr = union_largest_correlations([("s", "m", "l")], self.SIZES)
        assert corr == {("l", "s"): 1.0, ("l", "m"): 1.0}

    def test_q_objects_give_q_minus_1_pairs(self):
        sizes = {c: i + 1.0 for i, c in enumerate("abcde")}
        corr = union_largest_correlations([tuple("abcde")], sizes)
        assert len(corr) == 4
        assert all(pair.count("e") == 1 for pair in corr)


class TestEstimator:
    def test_incremental_matches_batch(self):
        trace = [("a", "b"), ("a", "b", "c"), ("b", "c"), ("d",)]
        est = CorrelationEstimator(mode="cooccurrence")
        est.observe_all(trace)
        assert est.correlations() == cooccurrence_correlations(trace)
        assert est.num_operations == 4

    def test_two_smallest_mode_matches_batch(self):
        sizes = {"a": 1.0, "b": 2.0, "c": 3.0}
        trace = [("a", "b", "c"), ("b", "c")]
        est = CorrelationEstimator(mode="two_smallest", sizes=sizes)
        est.observe_all(trace)
        assert est.correlations() == two_smallest_correlations(trace, sizes)

    def test_union_mode_matches_batch(self):
        sizes = {"a": 1.0, "b": 2.0, "c": 3.0}
        trace = [("a", "b", "c")]
        est = CorrelationEstimator(mode="union_largest", sizes=sizes)
        est.observe_all(trace)
        assert est.correlations() == union_largest_correlations(trace, sizes)

    def test_top_pairs_sorted_descending(self):
        est = CorrelationEstimator()
        est.observe_all([("a", "b"), ("a", "b"), ("c", "d")])
        top = est.top_pairs(2)
        assert top[0][0] == ("a", "b")
        assert top[0][1] > top[1][1]

    def test_sizes_required_for_size_modes(self):
        with pytest.raises(ValueError, match="requires object sizes"):
            CorrelationEstimator(mode="two_smallest")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown mode"):
            CorrelationEstimator(mode="bogus")


class TestSinglePassTraces:
    """The trace estimators must consume one-shot iterables correctly."""

    def test_cooccurrence_accepts_generator(self):
        trace = [("a", "b"), ("a", "b", "c"), ("b", "c")]
        from_list = cooccurrence_correlations(trace)
        from_generator = cooccurrence_correlations(op for op in trace)
        assert from_generator == from_list

    def test_two_smallest_accepts_generator(self):
        sizes = {"a": 1.0, "b": 2.0, "c": 3.0}
        trace = [("a", "b", "c"), ("b", "c")]
        assert two_smallest_correlations(
            (op for op in trace), sizes
        ) == two_smallest_correlations(trace, sizes)

    def test_union_largest_accepts_generator(self):
        sizes = {"a": 1.0, "b": 2.0, "c": 3.0}
        trace = [("a", "b", "c"), ("a", "c")]
        assert union_largest_correlations(
            (op for op in trace), sizes
        ) == union_largest_correlations(trace, sizes)


class TestOperationPairs:
    def test_cooccurrence_all_pairs(self):
        pairs = operation_pairs(("b", "a", "c"))
        assert pairs == [("a", "b"), ("a", "c"), ("b", "c")]

    def test_two_smallest_single_pair(self):
        sizes = {"a": 3.0, "b": 1.0, "c": 2.0}
        assert operation_pairs(("a", "b", "c"), "two_smallest", sizes) == [("b", "c")]

    def test_union_largest_star(self):
        sizes = {"a": 3.0, "b": 1.0, "c": 2.0}
        pairs = operation_pairs(("a", "b", "c"), "union_largest", sizes)
        assert sorted(pairs) == [("a", "b"), ("a", "c")]

    def test_size_modes_require_sizes(self):
        with pytest.raises(ValueError, match="requires object sizes"):
            operation_pairs(("a", "b"), "two_smallest")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown mode"):
            operation_pairs(("a", "b"), "bogus", {"a": 1.0})


class TestDecay:
    def test_probabilities_survive_support_shrinks(self):
        est = CorrelationEstimator()
        est.observe_all([("a", "b")] * 4)
        est.decay(0.5)
        assert est.correlations()[("a", "b")] == 1.0
        assert est.num_operations == 2
        assert est.correlations(min_support=3) == {}

    def test_decay_zero_forgets(self):
        est = CorrelationEstimator()
        est.observe(("a", "b"))
        est.decay(0.0)
        assert est.correlations() == {}
        assert est.num_operations == 0

    def test_decay_one_is_noop(self):
        est = CorrelationEstimator()
        est.observe(("a", "b"))
        before = est.correlations()
        est.decay(1.0)
        assert est.correlations() == before

    def test_invalid_factor(self):
        with pytest.raises(ValueError, match="decay factor"):
            CorrelationEstimator().decay(1.5)
