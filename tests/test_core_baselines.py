"""Tests for hash, greedy, and control placement strategies."""

import numpy as np
import pytest

from repro.core.greedy import greedy_placement
from repro.core.hashing import hash_node, random_hash_placement
from repro.core.problem import PlacementProblem
from repro.core.strategies import (
    available_planners,
    best_fit_decreasing_placement,
    get_planner,
    plan,
    round_robin_placement,
)
from repro.exceptions import InfeasibleProblemError


@pytest.fixture
def clustered_problem():
    """Two tight clusters that any correlation-aware strategy should co-locate."""
    return PlacementProblem.build(
        objects={"a": 2.0, "b": 2.0, "c": 2.0, "d": 2.0},
        nodes={0: 5.0, 1: 5.0},
        correlations={("a", "b"): 0.4, ("c", "d"): 0.4, ("a", "c"): 0.01},
    )


class TestHashPlacement:
    def test_deterministic(self):
        assert hash_node("keyword", 10) == hash_node("keyword", 10)

    def test_in_range(self):
        for obj in range(100):
            assert 0 <= hash_node(f"obj{obj}", 7) < 7

    def test_salt_changes_placement(self):
        nodes = [hash_node("obj", 100, salt=str(s)) for s in range(20)]
        assert len(set(nodes)) > 1

    def test_single_node(self):
        assert hash_node("x", 1) == 0

    def test_invalid_node_count(self):
        with pytest.raises(ValueError):
            hash_node("x", 0)

    def test_non_string_ids_hashable(self):
        assert 0 <= hash_node(("tuple", 3), 5) < 5

    def test_placement_matches_hash_node(self, clustered_problem):
        placement = random_hash_placement(clustered_problem)
        for obj in clustered_problem.object_ids:
            expected = hash_node(obj, clustered_problem.num_nodes)
            assert placement.assignment[clustered_problem.object_index(obj)] == expected

    def test_roughly_uniform_distribution(self):
        objects = {f"w{i}": 1.0 for i in range(2000)}
        p = PlacementProblem.build(objects, 4, {})
        counts = random_hash_placement(p).node_object_counts()
        assert counts.min() > 350  # expected 500 each


class TestGreedyPlacement:
    def test_colocates_top_pairs(self, clustered_problem):
        placement = greedy_placement(clustered_problem)
        assert placement.node_of("a") == placement.node_of("b")
        assert placement.node_of("c") == placement.node_of("d")
        assert placement.communication_cost() == pytest.approx(0.01 * 2.0)

    def test_respects_capacity_for_pairs(self):
        # Nodes can hold only one big object each, so the pair can't co-locate.
        p = PlacementProblem.build(
            {"a": 3.0, "b": 3.0}, {0: 4.0, 1: 4.0}, {("a", "b"): 1.0}
        )
        placement = greedy_placement(p)
        assert placement.is_feasible()
        assert placement.node_of("a") != placement.node_of("b")

    def test_places_uncorrelated_objects(self):
        p = PlacementProblem.build(
            {"a": 1.0, "b": 1.0, "lonely": 3.0}, {0: 4.0, 1: 4.0}, {("a", "b"): 0.5}
        )
        placement = greedy_placement(p)
        assert placement.is_feasible()

    def test_anchored_extension(self):
        # Chain a-b-c: after placing (a,b), c should join their node.
        p = PlacementProblem.build(
            {"a": 1.0, "b": 1.0, "c": 1.0},
            {0: 5.0, 1: 5.0},
            {("a", "b"): 0.9, ("b", "c"): 0.5},
        )
        placement = greedy_placement(p)
        assert placement.communication_cost() == 0.0

    def test_strict_capacity_raises_when_impossible(self):
        p = PlacementProblem.build(
            {"a": 3.0, "b": 3.0, "c": 3.0}, {0: 3.0, 1: 3.0}, {("a", "b"): 1.0}
        )
        with pytest.raises(InfeasibleProblemError):
            greedy_placement(p, strict_capacity=True)

    def test_soft_capacity_overflows_instead(self):
        p = PlacementProblem.build(
            {"a": 3.0, "b": 3.0, "c": 3.0}, {0: 3.0, 1: 3.0}, {("a", "b"): 1.0}
        )
        placement = greedy_placement(p)
        assert placement.assignment.shape == (3,)

    def test_by_weight_ordering_differs(self):
        # High-r low-w pair vs low-r high-w pair on conflicting nodes.
        p = PlacementProblem.build(
            {"a": 1.0, "b": 1.0, "c": 100.0, "d": 100.0},
            {0: 202.0, 1: 202.0},
            {("a", "b"): 0.9, ("c", "d"): 0.5},
        )
        by_r = greedy_placement(p, by_weight=False)
        by_w = greedy_placement(p, by_weight=True)
        # Both should co-locate both pairs here (sanity); orders must not crash.
        assert by_r.is_feasible() and by_w.is_feasible()

    def test_deterministic(self, clustered_problem):
        a = greedy_placement(clustered_problem)
        b = greedy_placement(clustered_problem)
        assert np.array_equal(a.assignment, b.assignment)


class TestControls:
    def test_round_robin_cycles(self):
        p = PlacementProblem.build({f"o{i}": 1.0 for i in range(6)}, 3, {})
        placement = round_robin_placement(p)
        assert placement.node_object_counts().tolist() == [2, 2, 2]

    def test_best_fit_decreasing_feasible(self):
        p = PlacementProblem.build(
            {"a": 5.0, "b": 4.0, "c": 3.0, "d": 2.0, "e": 1.0},
            {0: 8.0, 1: 7.0},
            {},
        )
        placement = best_fit_decreasing_placement(p)
        assert placement.is_feasible()

    def test_best_fit_strict_raises(self):
        p = PlacementProblem.build({"a": 5.0, "b": 5.0}, {0: 5.0, 1: 4.0}, {})
        with pytest.raises(InfeasibleProblemError):
            best_fit_decreasing_placement(p, strict_capacity=True)

    def test_registry_contains_all(self):
        names = available_planners()
        for expected in (
            "hash",
            "greedy",
            "lprr",
            "resilient",
            "round_robin",
            "best_fit_decreasing",
        ):
            assert expected in names

    def test_registry_lookup(self, clustered_problem):
        from repro.core.strategies import PlanConfig

        result = plan(clustered_problem, "greedy", PlanConfig(capacity_factor=None))
        assert result.placement.is_feasible()
        assert result.diagnostics["feasible"] is True

    def test_registry_unknown(self):
        with pytest.raises(KeyError, match="unknown planner"):
            get_planner("nope")
