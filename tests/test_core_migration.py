"""Tests for migration planning (repro.core.migration)."""

import numpy as np
import pytest

from repro.core.migration import Migration, diff_placements, select_migrations
from repro.core.placement import Placement
from repro.core.problem import PlacementProblem
from repro.exceptions import PlacementError


@pytest.fixture
def problem():
    return PlacementProblem.build(
        objects={"a": 2.0, "b": 2.0, "c": 2.0, "d": 2.0},
        nodes={0: 10.0, 1: 10.0},
        correlations={("a", "b"): 0.9, ("c", "d"): 0.5},
    )


def placement(problem, nodes):
    return Placement(problem, np.asarray(nodes, dtype=np.int64))


class TestDiff:
    def test_identical_placements_empty_plan(self, problem):
        p = placement(problem, [0, 0, 1, 1])
        plan = diff_placements(p, p)
        assert plan.num_moves == 0
        assert plan.bytes_moved == 0.0
        assert plan.saving == 0.0

    def test_diff_lists_changed_objects(self, problem):
        current = placement(problem, [0, 1, 0, 1])  # both pairs split
        target = placement(problem, [0, 0, 1, 1])  # both co-located
        plan = diff_placements(current, target)
        assert plan.num_moves == 2
        assert plan.bytes_moved == 4.0
        assert plan.cost_before == pytest.approx(0.9 * 2 + 0.5 * 2)
        assert plan.cost_after == pytest.approx(0.0)

    def test_apply_reaches_target(self, problem):
        current = placement(problem, [0, 1, 0, 1])
        target = placement(problem, [0, 0, 1, 1])
        plan = diff_placements(current, target)
        assert plan.apply(current) == target

    def test_apply_with_stale_source_rejected(self, problem):
        current = placement(problem, [0, 1, 0, 1])
        plan = diff_placements(current, placement(problem, [0, 0, 1, 1]))
        moved_already = placement(problem, [0, 0, 0, 1])
        with pytest.raises(PlacementError, match="expected it on"):
            plan.apply(moved_already)

    def test_mismatched_problems_rejected(self, problem):
        other = PlacementProblem.build({"x": 1.0}, 2, {})
        with pytest.raises(PlacementError, match="different objects"):
            diff_placements(
                placement(problem, [0, 0, 0, 0]),
                Placement(other, np.array([0])),
            )


class TestSelect:
    def test_unbudgeted_selection_converges_to_target_cost(self, problem):
        current = placement(problem, [0, 1, 0, 1])
        target = placement(problem, [0, 0, 1, 1])
        plan = select_migrations(current, target)
        assert plan.cost_after == pytest.approx(0.0)

    def test_budget_prefers_best_gain_per_byte(self, problem):
        # Budget for exactly one move: uniting (a,b) saves 1.8/2 bytes,
        # uniting (c,d) saves 1.0/2 bytes -> move b (or a).
        current = placement(problem, [0, 1, 0, 1])
        target = placement(problem, [0, 0, 1, 1])
        plan = select_migrations(current, target, budget_bytes=2.0)
        assert plan.num_moves == 1
        assert plan.migrations[0].obj in ("a", "b")
        assert plan.saving == pytest.approx(0.9 * 2.0)

    def test_zero_budget_moves_nothing(self, problem):
        current = placement(problem, [0, 1, 0, 1])
        target = placement(problem, [0, 0, 1, 1])
        plan = select_migrations(current, target, budget_bytes=0.0)
        assert plan.num_moves == 0
        assert plan.cost_after == plan.cost_before

    def test_negative_budget_rejected(self, problem):
        p = placement(problem, [0, 0, 1, 1])
        with pytest.raises(ValueError):
            select_migrations(p, p, budget_bytes=-1.0)

    def test_unprofitable_moves_skipped(self, problem):
        # Target splits pair (a,b); selection refuses to pay for it.
        current = placement(problem, [0, 0, 1, 1])
        target = placement(problem, [0, 1, 1, 1])
        plan = select_migrations(current, target)
        assert plan.num_moves <= 1
        assert plan.cost_after <= plan.cost_before + 1e-12

    def test_capacity_respected_during_plan(self):
        p = PlacementProblem.build(
            {"a": 3.0, "b": 3.0}, {0: 6.0, 1: 3.0}, {("a", "b"): 1.0}
        )
        current = Placement(p, np.array([0, 1]))
        target = Placement(p, np.array([0, 0]))
        # Moving b to node 0 fits (load 3+3 <= 6) -> allowed.
        plan = select_migrations(current, target)
        assert plan.num_moves == 1
        # But if node 0 were smaller, the move must be skipped.
        tight = PlacementProblem.build(
            {"a": 3.0, "b": 3.0}, {0: 4.0, 1: 4.0}, {("a", "b"): 1.0}
        )
        plan2 = select_migrations(
            Placement(tight, np.array([0, 1])),
            Placement(tight, np.array([0, 0])),
        )
        assert plan2.num_moves == 0

    def test_interacting_moves_reevaluated(self):
        # Chain a-b-c: moving b towards a changes c's marginal gain.
        p = PlacementProblem.build(
            {"a": 1.0, "b": 1.0, "c": 1.0},
            {0: 10.0, 1: 10.0},
            {("a", "b"): 0.6, ("b", "c"): 0.6},
        )
        current = Placement(p, np.array([0, 1, 1]))
        target = Placement(p, np.array([0, 0, 0]))
        plan = select_migrations(current, target)
        assert plan.cost_after == pytest.approx(0.0)
        # b must move before c becomes profitable; order matters.
        assert [m.obj for m in plan.migrations] == ["b", "c"]

    def test_bytes_accounting(self, problem):
        current = placement(problem, [0, 1, 0, 1])
        target = placement(problem, [0, 0, 1, 1])
        plan = select_migrations(current, target, budget_bytes=100.0)
        assert plan.bytes_moved == pytest.approx(
            sum(m.size for m in plan.migrations)
        )


class TestDriftScenario:
    def test_replan_after_drift_saves_with_small_budget(self):
        """End-to-end: place for period-1 correlations, drift to
        period-2, replan, and migrate under a budget."""
        rng = np.random.default_rng(0)
        objects = {f"o{i}": 1.0 for i in range(20)}
        pairs1 = {(f"o{2*i}", f"o{2*i+1}"): 0.5 for i in range(10)}
        problem1 = PlacementProblem.build(objects, 4, pairs1)

        from repro.core.lprr import LPRRPlanner

        placement1 = LPRRPlanner(seed=0).plan(problem1).placement

        # Drift: three couples re-pair with new partners.
        pairs2 = dict(pairs1)
        del pairs2[("o0", "o1")], pairs2[("o2", "o3")]
        pairs2[("o0", "o2")] = 0.7
        pairs2[("o1", "o3")] = 0.7
        problem2 = PlacementProblem.build(objects, 4, pairs2)

        current = Placement(problem2, placement1.assignment)
        target = LPRRPlanner(seed=0).plan(problem2).placement
        plan = select_migrations(current, target, budget_bytes=4.0)
        assert plan.bytes_moved <= 4.0
        assert plan.cost_after <= plan.cost_before
