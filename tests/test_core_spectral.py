"""Tests for spectral placement (repro.core.spectral)."""

import numpy as np
import pytest

from repro.core.hashing import random_hash_placement
from repro.core.problem import PlacementProblem
from repro.core.spectral import spectral_placement


def two_cluster_problem(cluster_size=4, nodes=2):
    objects = {}
    correlations = {}
    for c in range(2):
        members = [f"c{c}_{i}" for i in range(cluster_size)]
        for m in members:
            objects[m] = 1.0
        for i in range(cluster_size):
            for j in range(i + 1, cluster_size):
                correlations[(members[i], members[j])] = 0.5
    correlations[("c0_0", "c1_0")] = 0.01  # weak bridge
    return PlacementProblem.build(objects, nodes, correlations)


class TestSpectralPlacement:
    def test_total_assignment(self):
        p = two_cluster_problem()
        placement = spectral_placement(p)
        assert placement.assignment.shape == (p.num_objects,)
        assert np.all(placement.assignment >= 0)

    def test_separates_two_clusters(self):
        p = two_cluster_problem()
        placement = spectral_placement(p)
        # All of cluster 0 together, all of cluster 1 together.
        nodes0 = {placement.node_of(f"c0_{i}") for i in range(4)}
        nodes1 = {placement.node_of(f"c1_{i}") for i in range(4)}
        assert len(nodes0) == 1 and len(nodes1) == 1
        assert nodes0 != nodes1
        # Only the weak bridge pays.
        assert placement.communication_cost() == pytest.approx(0.01 * 1.0)

    def test_beats_hash_on_clustered_graph(self):
        p = two_cluster_problem(cluster_size=6, nodes=4)
        spectral = spectral_placement(p)
        hashed = random_hash_placement(p)
        assert spectral.communication_cost() <= hashed.communication_cost()

    def test_respects_capacity_via_final_repair(self):
        p = PlacementProblem.build(
            {f"o{i}": 1.0 for i in range(6)},
            {0: 3.0, 1: 3.0},
            {("o0", "o1"): 0.9},
        )
        placement = spectral_placement(p)
        assert placement.is_feasible()

    def test_no_edges_falls_back_to_size_split(self):
        p = PlacementProblem.build({f"o{i}": float(i + 1) for i in range(6)}, 2, {})
        placement = spectral_placement(p)
        loads = placement.node_loads()
        # Size-balanced halves: neither side empty.
        assert loads.min() > 0

    def test_more_nodes_than_objects(self):
        p = PlacementProblem.build({"a": 1.0, "b": 1.0}, 5, {("a", "b"): 0.5})
        placement = spectral_placement(p)
        assert placement.assignment.shape == (2,)

    def test_deterministic(self):
        p = two_cluster_problem()
        a = spectral_placement(p)
        b = spectral_placement(p)
        assert np.array_equal(a.assignment, b.assignment)

    def test_single_node(self):
        p = two_cluster_problem(nodes=1)
        placement = spectral_placement(p)
        assert placement.communication_cost() == 0.0
