"""Tests for the parallel planning engine and the plan cache."""

import json

import numpy as np
import pytest

from repro import obs
from repro.core.lp import solve_placement_lp
from repro.core.lprr import LPRRPlanner, LPRRResult
from repro.core.problem import PlacementProblem
from repro.parallel import (
    PlanCache,
    chunk_evenly,
    parallel_round_best_of,
    problem_fingerprint,
    resolve_jobs,
    signature_key,
    solve_components,
    spawn_seed_sequences,
)
from repro.core.decompose import component_subproblems


@pytest.fixture
def problem():
    """A dense instance with tight capacities: every split costs, so
    rounding trials genuinely differ and the LP optimum is fractional."""
    rng = np.random.default_rng(5)
    sizes = {f"o{i:02d}": float(rng.uniform(1, 3)) for i in range(30)}
    names = sorted(sizes)
    correlations = {}
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            if rng.random() < 0.3:
                correlations[(a, b)] = float(rng.uniform(0.02, 0.3))
    capacity = 1.15 * sum(sizes.values()) / 4
    return PlacementProblem.build(
        sizes, {k: capacity for k in range(4)}, correlations
    )


@pytest.fixture
def fractional(problem):
    return solve_placement_lp(problem)


@pytest.fixture
def clustered_problem():
    """Disjoint correlation clusters, so decomposition finds components."""
    rng = np.random.default_rng(9)
    sizes = {f"c{i:02d}": float(rng.uniform(1, 3)) for i in range(24)}
    names = sorted(sizes)
    correlations = {}
    for c in range(6):
        members = names[c * 4 : c * 4 + 4]
        for i, a in enumerate(members):
            for b in members[i + 1 :]:
                correlations[(a, b)] = float(rng.uniform(0.05, 0.3))
    capacity = 1.2 * sum(sizes.values()) / 4
    return PlacementProblem.build(
        sizes, {k: capacity for k in range(4)}, correlations
    )


class TestSeeds:
    def test_spawn_deterministic(self):
        a = spawn_seed_sequences(123, 5)
        b = spawn_seed_sequences(123, 5)
        assert [s.generate_state(2).tolist() for s in a] == [
            s.generate_state(2).tolist() for s in b
        ]

    def test_spawn_children_distinct(self):
        children = spawn_seed_sequences(0, 4)
        states = {tuple(s.generate_state(2).tolist()) for s in children}
        assert len(states) == 4

    def test_none_seed_normalized_to_zero(self):
        a = spawn_seed_sequences(None, 2)
        b = spawn_seed_sequences(0, 2)
        assert a[0].generate_state(1).tolist() == b[0].generate_state(1).tolist()


class TestRunnerHelpers:
    def test_resolve_jobs(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(0) == 1
        assert resolve_jobs(3) == 3
        assert resolve_jobs(-1) >= 1

    def test_chunk_evenly_covers_all_items(self):
        items = list(range(10))
        chunks = chunk_evenly(items, 3)
        assert [x for chunk in chunks for x in chunk] == items
        assert max(len(c) for c in chunks) - min(len(c) for c in chunks) <= 1

    def test_chunk_evenly_more_chunks_than_items(self):
        chunks = chunk_evenly([1, 2], 5)
        assert [x for chunk in chunks for x in chunk] == [1, 2]
        assert all(chunk for chunk in chunks)


class TestParallelRounding:
    def test_jobs_independent_results(self, fractional):
        serial = parallel_round_best_of(fractional, trials=8, root_seed=7, jobs=1)
        pooled = parallel_round_best_of(fractional, trials=8, root_seed=7, jobs=2)
        assert serial.trial_costs == pooled.trial_costs
        assert serial.cost == pooled.cost
        assert serial.best_trial == pooled.best_trial
        assert np.array_equal(
            serial.placement.assignment, pooled.placement.assignment
        )

    def test_trial_costs_in_global_order(self, fractional):
        result = parallel_round_best_of(fractional, trials=6, root_seed=1, jobs=1)
        assert len(result.trial_costs) == 6
        assert result.cost == result.trial_costs[result.best_trial]

    def test_without_tolerance_winner_is_global_minimum(self, fractional):
        result = parallel_round_best_of(fractional, trials=8, root_seed=3, jobs=1)
        assert result.cost == min(result.trial_costs)
        assert result.best_trial == result.trial_costs.index(min(result.trial_costs))

    def test_different_root_seeds_differ(self, fractional):
        a = parallel_round_best_of(fractional, trials=5, root_seed=0, jobs=1)
        b = parallel_round_best_of(fractional, trials=5, root_seed=99, jobs=1)
        assert not np.array_equal(
            a.placement.assignment, b.placement.assignment
        )

    def test_trials_validation(self, fractional):
        with pytest.raises(ValueError):
            parallel_round_best_of(fractional, trials=0, root_seed=0, jobs=1)


class TestParallelComponents:
    def test_jobs_independent_results(self, clustered_problem):
        components, _ = component_subproblems(clustered_problem)
        assert len(components) > 1
        serial = solve_components(components, trials=4, root_seed=2, jobs=1)
        pooled = solve_components(components, trials=4, root_seed=2, jobs=2)
        assert len(serial) == len(pooled) == len(components)
        for s, p in zip(serial, pooled):
            assert s.object_ids == p.object_ids
            assert np.array_equal(s.assignment, p.assignment)
            assert s.lower_bound == pytest.approx(p.lower_bound)

    def test_planner_decomposed_jobs_equivalence(self, clustered_problem):
        problem = clustered_problem
        plans = {
            jobs: LPRRPlanner(seed=11, decompose=True, jobs=jobs).plan(problem)
            for jobs in (1, 2)
        }
        assert np.array_equal(
            plans[1].placement.assignment, plans[2].placement.assignment
        )
        assert plans[1].cost == pytest.approx(plans[2].cost)


class TestPlannerEngines:
    def test_legacy_default_unchanged(self, problem):
        # jobs=None must match the historical sequential-stream rounding
        # on the exact scoped subproblem the planner solved.
        from repro.core.rounding import round_best_of

        planned = LPRRPlanner(seed=4, capacity_factor=None).plan(problem)
        sub = problem.subproblem(
            list(planned.scope_objects),
            capacities=planned.effective_capacities,
        )
        legacy = round_best_of(
            solve_placement_lp(sub), trials=10, rng=4, capacity_tolerance=0.05
        )
        assert np.array_equal(
            legacy.placement.assignment, planned.rounding.placement.assignment
        )
        assert legacy.trial_costs == planned.rounding.trial_costs

    def test_parallel_engine_jobs_equivalence(self, problem):
        plans = {
            jobs: LPRRPlanner(seed=9, jobs=jobs).plan(problem) for jobs in (1, 2)
        }
        assert np.array_equal(
            plans[1].placement.assignment, plans[2].placement.assignment
        )
        assert plans[1].rounding.trial_costs == plans[2].rounding.trial_costs


class TestFingerprint:
    def test_stable_across_serialization_round_trip(self, problem):
        from repro.core.serialization import problem_from_dict, problem_to_dict

        rebuilt = problem_from_dict(problem_to_dict(problem))
        assert problem_fingerprint(problem) == problem_fingerprint(rebuilt)

    def test_sensitive_to_problem_changes(self, problem):
        shrunk = problem.subproblem(list(problem.object_ids)[:-1])
        assert problem_fingerprint(problem) != problem_fingerprint(shrunk)

    def test_signature_key_distinguishes_parts(self):
        assert signature_key("a", "b") != signature_key("a", "c")
        assert signature_key("a", "b") == signature_key("a", "b")


class TestPlanCache:
    def test_store_load_round_trip(self, tmp_path):
        cache = PlanCache(tmp_path)
        assert cache.load("plan", "k" * 64) is None
        cache.store("plan", "k" * 64, {"x": 1})
        assert cache.load("plan", "k" * 64) == {"x": 1}

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = PlanCache(tmp_path)
        cache.store("lp", "a" * 64, {"x": 1})
        path = cache._path("lp", "a" * 64)
        path.write_text("{not json", encoding="utf-8")
        assert cache.load("lp", "a" * 64) is None

    def test_clear(self, tmp_path):
        cache = PlanCache(tmp_path)
        cache.store("plan", "b" * 64, {"x": 1})
        cache.clear()
        assert cache.load("plan", "b" * 64) is None

    def test_planner_cache_hit_round_trip(self, tmp_path, problem):
        planner = LPRRPlanner(seed=1, jobs=1, cache=PlanCache(tmp_path))
        cold = planner.plan(problem)
        warm = planner.plan(problem)
        assert not cold.from_cache
        assert warm.from_cache
        assert np.array_equal(
            cold.placement.assignment, warm.placement.assignment
        )
        assert warm.cost == pytest.approx(cold.cost)
        assert warm.lp_lower_bound == pytest.approx(cold.lp_lower_bound)
        assert warm.scope_objects == cold.scope_objects

    def test_warm_replan_skips_lp_solve(self, tmp_path, problem):
        planner = LPRRPlanner(seed=1, jobs=1, cache=PlanCache(tmp_path))
        planner.plan(problem)

        inst = obs.enable(obs.Instrumentation())
        try:
            result = planner.plan(problem)
        finally:
            obs.disable()
        assert result.from_cache
        span_names = {s.name for s in inst.tracer.all_spans()}
        assert "lp.solve" not in span_names
        assert "lprr.plan.cached" in span_names
        assert inst.metrics.counter("cache.hits").value > 0
        assert inst.metrics.counter("cache.plan.hits").value > 0

    def test_cold_plan_counts_misses_and_stores(self, tmp_path, problem):
        inst = obs.enable(obs.Instrumentation())
        try:
            LPRRPlanner(seed=1, jobs=1, cache=PlanCache(tmp_path)).plan(problem)
        finally:
            obs.disable()
        assert inst.metrics.counter("cache.misses").value > 0
        assert inst.metrics.counter("cache.stores").value > 0

    def test_cache_key_includes_config(self, tmp_path, problem):
        cache = PlanCache(tmp_path)
        first = LPRRPlanner(seed=1, jobs=1, cache=cache).plan(problem)
        other_seed = LPRRPlanner(seed=2, jobs=1, cache=cache).plan(problem)
        assert not first.from_cache
        assert not other_seed.from_cache  # different signature, not a hit

    def test_cache_key_excludes_jobs_within_engine(self, tmp_path, problem):
        cache = PlanCache(tmp_path)
        LPRRPlanner(seed=1, jobs=1, cache=cache).plan(problem)
        pooled = LPRRPlanner(seed=1, jobs=2, cache=cache).plan(problem)
        assert pooled.from_cache  # same spawned-seed engine, same plan

    def test_cache_key_separates_engines(self, tmp_path, problem):
        cache = PlanCache(tmp_path)
        LPRRPlanner(seed=1, jobs=1, cache=cache).plan(problem)
        legacy = LPRRPlanner(seed=1, jobs=None, cache=cache).plan(problem)
        assert not legacy.from_cache  # legacy stream rounds differently

    def test_lp_cache_reused_across_seeds(self, tmp_path, problem):
        cache = PlanCache(tmp_path)
        LPRRPlanner(seed=1, jobs=1, cache=cache).plan(problem)
        inst = obs.enable(obs.Instrumentation())
        try:
            result = LPRRPlanner(seed=2, jobs=1, cache=cache).plan(problem)
        finally:
            obs.disable()
        # Plan missed (different seed) but the LP artifact hit.
        assert not result.from_cache
        span_names = {s.name for s in inst.tracer.all_spans()}
        assert "lp.solve" not in span_names
        assert "lprr.lp.cached" in span_names
        assert inst.metrics.counter("cache.lp.hits").value > 0

    def test_cached_document_is_json(self, tmp_path, problem):
        planner = LPRRPlanner(seed=1, jobs=1, cache=PlanCache(tmp_path))
        result = planner.plan(problem)
        docs = list(tmp_path.rglob("*.json"))
        assert docs
        for doc in docs:
            json.loads(doc.read_text(encoding="utf-8"))
        restored = LPRRResult.from_dict(result.to_dict(), problem)
        assert np.array_equal(
            restored.placement.assignment, result.placement.assignment
        )


class TestPoolMetrics:
    def test_rounding_records_metrics(self, fractional):
        inst = obs.enable(obs.Instrumentation())
        try:
            parallel_round_best_of(fractional, trials=4, root_seed=0, jobs=2)
        finally:
            obs.disable()
        assert inst.metrics.counter("rounding.trials").value == 4
        assert inst.metrics.gauge("parallel.jobs").value == 2
        utilization = inst.metrics.gauge("parallel.pool_utilization").value
        assert 0.0 <= utilization <= 1.0
        assert inst.metrics.gauge("rounding.trials_per_second").value > 0


def _double(x):
    return x * 2


class _FlakyPool:
    """Stands in for a ProcessPoolExecutor that keeps losing workers."""

    def __init__(self, failures_left):
        self.failures_left = failures_left

    def map(self, fn, items):
        from concurrent.futures.process import BrokenProcessPool

        if self.failures_left > 0:
            self.failures_left -= 1
            raise BrokenProcessPool("worker died")
        return map(fn, items)

    def shutdown(self, wait=True):
        pass


class TestRunnerResilience:
    def _rigged_runner(self, failures, **kwargs):
        from repro.parallel import TaskRunner

        runner = TaskRunner(jobs=2, **kwargs)
        state = {"failures": failures}

        def fake_ensure():
            if runner._pool is None:
                runner._pool = _FlakyPool(0 if state["failures"] <= 0 else 1)
                state["failures"] -= 1
            return runner._pool

        runner._ensure_pool = fake_ensure
        return runner

    def test_broken_pool_retried_then_succeeds(self):
        inst = obs.enable(obs.Instrumentation())
        try:
            runner = self._rigged_runner(failures=1, pool_retries=1)
            sleeps = []
            runner._sleep = sleeps.append
            assert runner.map(_double, [1, 2, 3]) == [2, 4, 6]
        finally:
            obs.disable()
        assert inst.metrics.counter("pool.broken").value == 1
        assert inst.metrics.counter("pool.inline_fallbacks").value == 0
        assert sleeps == [runner.retry_backoff_s]

    def test_persistently_broken_pool_falls_back_inline(self):
        inst = obs.enable(obs.Instrumentation())
        try:
            runner = self._rigged_runner(failures=10, pool_retries=2)
            sleeps = []
            runner._sleep = sleeps.append
            assert runner.map(_double, [1, 2, 3]) == [2, 4, 6]
        finally:
            obs.disable()
        # Initial attempt + 2 retries all broke, then inline served it.
        assert inst.metrics.counter("pool.broken").value == 3
        assert inst.metrics.counter("pool.inline_fallbacks").value == 1
        assert sleeps == [
            runner.retry_backoff_s,
            runner.retry_backoff_s * 2,
        ]

    def test_zero_retries_goes_straight_inline(self):
        inst = obs.enable(obs.Instrumentation())
        try:
            runner = self._rigged_runner(failures=10, pool_retries=0)
            runner._sleep = lambda s: pytest.fail("must not sleep")
            assert runner.map(_double, [5, 6]) == [10, 12]
        finally:
            obs.disable()
        assert inst.metrics.counter("pool.broken").value == 1
        assert inst.metrics.counter("pool.inline_fallbacks").value == 1

    def test_negative_retries_rejected(self):
        from repro.parallel import TaskRunner

        with pytest.raises(ValueError):
            TaskRunner(jobs=2, pool_retries=-1)


class TestCacheCorruption:
    """Damaged artifacts degrade to counted misses, never to errors."""

    def _entry_path(self, cache, kind, key):
        path = cache._path(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        return path

    def test_truncated_json_is_counted_corrupt(self, tmp_path):
        cache = PlanCache(tmp_path)
        self._entry_path(cache, "plan", "ab" * 32).write_text('{"cost": 1.')
        inst = obs.enable(obs.Instrumentation())
        try:
            assert cache.load("plan", "ab" * 32) is None
        finally:
            obs.disable()
        assert inst.metrics.counter("cache.corrupt").value == 1
        assert inst.metrics.counter("cache.plan.corrupt").value == 1
        assert inst.metrics.counter("cache.misses").value == 1

    def test_binary_garbage_is_counted_corrupt(self, tmp_path):
        cache = PlanCache(tmp_path)
        self._entry_path(cache, "lp", "cd" * 32).write_bytes(
            b"\xff\xfe\x00garbage\x80"
        )
        inst = obs.enable(obs.Instrumentation())
        try:
            assert cache.load("lp", "cd" * 32) is None
        finally:
            obs.disable()
        assert inst.metrics.counter("cache.lp.corrupt").value == 1

    def test_non_object_document_is_counted_corrupt(self, tmp_path):
        cache = PlanCache(tmp_path)
        self._entry_path(cache, "plan", "ef" * 32).write_text("[1, 2, 3]")
        inst = obs.enable(obs.Instrumentation())
        try:
            assert cache.load("plan", "ef" * 32) is None
        finally:
            obs.disable()
        assert inst.metrics.counter("cache.corrupt").value == 1

    def test_unreadable_entry_is_a_plain_miss(self, tmp_path):
        # A directory where the artifact file should be trips OSError
        # (works even when the suite runs as root, unlike chmod tricks).
        cache = PlanCache(tmp_path)
        key = "0a" * 32
        self._entry_path(cache, "plan", key).mkdir()
        inst = obs.enable(obs.Instrumentation())
        try:
            assert cache.load("plan", key) is None
        finally:
            obs.disable()
        assert inst.metrics.counter("cache.misses").value == 1
        assert inst.metrics.counter("cache.corrupt").value == 0

    def test_corrupt_entry_overwritten_by_replan(self, tmp_path, problem):
        cache = PlanCache(tmp_path)
        planner = LPRRPlanner(seed=1, jobs=1, cache=cache)
        planner.plan(problem)
        entries = list(tmp_path.rglob("*.json"))
        assert entries
        for entry in entries:
            entry.write_text("{corrupt")
        result = planner.plan(problem)  # degrades to a fresh solve
        assert not result.from_cache
        for entry in tmp_path.rglob("*.json"):
            json.loads(entry.read_text(encoding="utf-8"))  # healed


class TestCrossProcessTracing:
    """Worker spans ship back in task payloads and stitch into one tree."""

    def test_traced_map_stitches_worker_spans(self):
        from repro.parallel import TaskRunner

        inst = obs.enable(obs.Instrumentation())
        try:
            runner = TaskRunner(jobs=2)
            with inst.tracer.span("parent"):
                results = runner.map(
                    _double, [1, 2, 3], trace_label="test.worker"
                )
        finally:
            obs.disable()
        assert results == [2, 4, 6]
        (root,) = inst.tracer.roots  # a single stitched tree
        workers = [c for c in root.children if c.name == "test.worker"]
        assert len(workers) == 3
        for span in workers:
            assert isinstance(span.attributes.get("pid"), int)
            assert span.end_time is not None
            assert span.duration >= 0.0
        # at least two distinct worker processes served the three tasks
        assert len({s.attributes["pid"] for s in workers}) >= 1

    def test_stitched_tree_exports_worker_tracks(self):
        from repro.obs.export import to_chrome_trace
        from repro.parallel import TaskRunner

        inst = obs.enable(obs.Instrumentation())
        try:
            runner = TaskRunner(jobs=2)
            with inst.tracer.span("parent"):
                runner.map(_double, [1, 2], trace_label="test.worker")
        finally:
            obs.disable()
        doc = json.loads(to_chrome_trace(inst.tracer))
        tracks = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["name"] == "thread_name"
        }
        assert "main" in tracks
        assert any(t.startswith("worker pid=") for t in tracks)

    def test_untraced_map_attaches_nothing(self):
        from repro.parallel import TaskRunner

        inst = obs.enable(obs.Instrumentation())
        try:
            runner = TaskRunner(jobs=2)
            assert runner.map(_double, [1, 2]) == [2, 4]
        finally:
            obs.disable()
        assert inst.tracer.roots == []

    def test_trace_label_without_obs_is_plain(self):
        from repro.parallel import TaskRunner

        obs.disable()
        runner = TaskRunner(jobs=2)
        assert runner.map(_double, [4], trace_label="test.worker") == [8]

    def test_inline_fallback_still_returns_results(self):
        inst = obs.enable(obs.Instrumentation())
        try:
            runner = TestRunnerResilience()._rigged_runner(
                failures=10, pool_retries=0
            )
            results = runner.map(_double, [1, 2], trace_label="test.worker")
        finally:
            obs.disable()
        assert results == [2, 4]

    def test_parallel_rounding_produces_worker_spans(self, fractional):
        inst = obs.enable(obs.Instrumentation())
        try:
            with inst.tracer.span("place"):
                parallel_round_best_of(fractional, trials=4, root_seed=0, jobs=2)
        finally:
            obs.disable()
        (root,) = inst.tracer.roots
        names = [s.name for s in root.walk()]
        assert "rounding.worker" in names
