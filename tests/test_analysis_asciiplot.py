"""Tests for ASCII charts (repro.analysis.asciiplot)."""

import pytest

from repro.analysis.asciiplot import ascii_chart, sparkline


class TestAsciiChart:
    def test_basic_structure(self):
        chart = ascii_chart(
            {"line": ([0, 1, 2], [0.0, 0.5, 1.0])}, width=20, height=6
        )
        lines = chart.splitlines()
        assert len(lines) == 6 + 3  # grid + axis + x labels + legend
        assert "o line" in lines[-1]

    def test_title_prepended(self):
        chart = ascii_chart({"a": ([0, 1], [0, 1])}, title="Figure X")
        assert chart.splitlines()[0] == "Figure X"

    def test_markers_distinct_per_series(self):
        chart = ascii_chart(
            {"first": ([0, 1], [0, 0]), "second": ([0, 1], [1, 1])},
            width=12,
            height=5,
        )
        assert "o first" in chart
        assert "x second" in chart
        assert "o" in chart and "x" in chart

    def test_extremes_on_grid_edges(self):
        chart = ascii_chart({"a": ([0, 10], [0, 1])}, width=20, height=5)
        rows = [line for line in chart.splitlines() if "|" in line]
        # Max y lands in the top row, min y in the bottom row.
        assert "o" in rows[0]
        assert "o" in rows[-1]

    def test_log_scale_labels(self):
        chart = ascii_chart(
            {"a": ([1, 2, 3], [1e-4, 1e-3, 1e-2])},
            log_y=True,
            width=15,
            height=5,
        )
        assert "[log y]" in chart
        assert "0.01" in chart  # top label back-transformed

    def test_log_scale_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="log scale"):
            ascii_chart({"a": ([0, 1], [0.0, 1.0])}, log_y=True)

    def test_constant_series_centered(self):
        # Degenerate span must not divide by zero.
        chart = ascii_chart({"a": ([0, 1, 2], [5.0, 5.0, 5.0])}, width=12, height=4)
        assert "o" in chart

    def test_validation(self):
        with pytest.raises(ValueError, match="width"):
            ascii_chart({"a": ([0], [0])}, width=5)
        with pytest.raises(ValueError, match="no series"):
            ascii_chart({})
        with pytest.raises(ValueError, match="lengths differ"):
            ascii_chart({"a": ([0, 1], [0])})
        with pytest.raises(ValueError, match="empty"):
            ascii_chart({"a": ([], [])})

    def test_deterministic(self):
        data = {"a": ([0, 1, 2, 3], [3.0, 1.0, 2.0, 0.0])}
        assert ascii_chart(data) == ascii_chart(data)


class TestSparkline:
    def test_monotone_series(self):
        line = sparkline([1, 2, 3, 4])
        assert len(line) == 4
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_downsampling(self):
        line = sparkline(list(range(100)), width=10)
        assert len(line) == 10
