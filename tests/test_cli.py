"""Tests for the command-line interface (repro.cli)."""

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def query_log_file(tmp_path):
    path = tmp_path / "queries.txt"
    main(
        [
            "gen-queries",
            str(path),
            "--count",
            "300",
            "--vocabulary",
            "150",
            "--topics",
            "20",
            "--seed",
            "1",
        ]
    )
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_strategy_choices_enforced(self, tmp_path):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["place", "log", "out", "--strategy", "magic"]
            )


class TestGenQueries:
    def test_writes_log(self, query_log_file, capsys):
        assert query_log_file.exists()
        lines = query_log_file.read_text().strip().splitlines()
        assert len(lines) == 300

    def test_deterministic(self, tmp_path):
        a, b = tmp_path / "a.txt", tmp_path / "b.txt"
        args = ["--count", "50", "--vocabulary", "100", "--seed", "3"]
        main(["gen-queries", str(a), *args])
        main(["gen-queries", str(b), *args])
        assert a.read_text() == b.read_text()


class TestPlaceAndEvaluate:
    COMMON = ["--documents", "150", "--vocabulary", "300", "--seed", "1"]

    def test_place_hash_writes_json(self, query_log_file, tmp_path, capsys):
        out = tmp_path / "placement.json"
        code = main(
            [
                "place",
                str(query_log_file),
                str(out),
                "--strategy",
                "hash",
                "--nodes",
                "4",
                *self.COMMON,
            ]
        )
        assert code == 0
        mapping = json.loads(out.read_text())
        assert mapping
        assert all(0 <= node < 4 for node in mapping.values())
        assert "placed" in capsys.readouterr().out

    def test_place_lprr_beats_hash_cost(self, query_log_file, tmp_path, capsys):
        hash_out = tmp_path / "hash.json"
        lprr_out = tmp_path / "lprr.json"
        for strategy, path in (("hash", hash_out), ("lprr", lprr_out)):
            main(
                [
                    "place",
                    str(query_log_file),
                    str(path),
                    "--strategy",
                    strategy,
                    "--nodes",
                    "4",
                    "--scope",
                    "60",
                    *self.COMMON,
                ]
            )
        text = capsys.readouterr().out
        costs = [
            float(line.split("model cost ")[1].split(";")[0])
            for line in text.splitlines()
            if "model cost" in line
        ]
        assert costs[1] <= costs[0]

    def test_evaluate_reports_bytes(self, query_log_file, tmp_path, capsys):
        out = tmp_path / "placement.json"
        main(
            [
                "place",
                str(query_log_file),
                str(out),
                "--strategy",
                "greedy",
                "--nodes",
                "4",
                *self.COMMON,
            ]
        )
        capsys.readouterr()
        code = main(["evaluate", str(query_log_file), str(out), *self.COMMON])
        assert code == 0
        text = capsys.readouterr().out
        assert "bytes moved" in text
        assert "local" in text


class TestMetricsRoundTrip:
    COMMON = ["--documents", "150", "--vocabulary", "300", "--seed", "1"]
    FLAGS = ["--nodes", "4", "--scope", "40", *COMMON]

    def test_evaluate_metrics_out_matches_summary(
        self, query_log_file, tmp_path, capsys
    ):
        """End-to-end: inline-planned evaluate emits a JSON report whose
        query-count and bytes metrics match the printed summary."""
        metrics_path = tmp_path / "m.json"
        code = main(
            [
                "evaluate",
                str(query_log_file),
                *self.FLAGS,
                "--metrics-out",
                str(metrics_path),
                "--trace",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        # "replayed N queries: B bytes moved, ..."
        replayed = next(l for l in captured.out.splitlines() if "replayed" in l)
        queries = int(replayed.split("replayed ")[1].split(" queries")[0])
        total_bytes = int(replayed.split("queries: ")[1].split(" bytes")[0])

        doc = json.loads(metrics_path.read_text())
        counters = doc["metrics"]["counters"]
        assert counters["engine.queries"] == queries
        assert counters["engine.bytes"] == total_bytes
        bytes_hist = doc["metrics"]["histograms"]["engine.query.bytes"]
        assert bytes_hist["count"] == queries
        assert bytes_hist["sum"] == total_bytes
        # The full pipeline ran, so planning metrics are present too.
        assert doc["metrics"]["histograms"]["lp.solve_seconds"]["count"] >= 1
        assert doc["metrics"]["histograms"]["rounding.trial_cost"]["count"] >= 1

        def names(span):
            yield span["name"]
            for child in span["children"]:
                yield from names(child)

        (root,) = doc["spans"]
        spanned = set(names(root))
        assert root["name"] == "evaluate"
        assert {"lprr.plan", "lp.solve", "rounding", "replay"} <= spanned
        # --trace prints the same tree on stderr.
        assert "lprr.plan" in captured.err
        assert "replay" in captured.err

    def test_disabled_run_is_identical_and_writes_nothing(
        self, query_log_file, tmp_path, capsys
    ):
        args = ["evaluate", str(query_log_file), *self.FLAGS]
        assert main(args) == 0
        plain = capsys.readouterr()
        metrics_path = tmp_path / "m.json"
        assert main([*args, "--metrics-out", str(metrics_path), "--trace"]) == 0
        instrumented = capsys.readouterr()
        assert instrumented.out == plain.out  # byte-identical stdout
        assert plain.err == ""
        assert metrics_path.exists()
        assert not list(tmp_path.glob("*.json")) == []  # file only when asked
        assert main(args) == 0
        assert capsys.readouterr().err == ""  # no trace when not asked

    def test_place_prometheus_export(self, query_log_file, tmp_path, capsys):
        out = tmp_path / "placement.json"
        prom = tmp_path / "metrics.prom"
        code = main(
            [
                "place",
                str(query_log_file),
                str(out),
                "--strategy",
                "lprr",
                *self.FLAGS,
                "--metrics-out",
                str(prom),
                "--metrics-format",
                "prometheus",
            ]
        )
        assert code == 0
        text = prom.read_text()
        assert "# TYPE lp_solve_seconds summary" in text
        assert "lp_solve_seconds_count" in text
        assert "# TYPE lprr_plans_total counter" in text


class TestExperimentCommand:
    SMALL = [
        "--documents",
        "120",
        "--vocabulary",
        "300",
        "--queries",
        "800",
        "--seed",
        "2",
    ]

    def test_fig2(self, capsys):
        assert main(["experiment", "fig2", *self.SMALL]) == 0
        out = capsys.readouterr().out
        assert "Figure 2(A)" in out
        assert "Figure 2(B)" in out

    def test_fig5(self, capsys):
        assert main(["experiment", "fig5", *self.SMALL]) == 0
        assert "Figure 5" in capsys.readouterr().out


class TestAnalyzeCommand:
    def test_analyze_generated_log(self, query_log_file, capsys):
        code = main(
            [
                "analyze",
                str(query_log_file),
                "--top-pairs",
                "50",
                "--min-count",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "skewness" in out
        assert "stability" in out

    def test_analyze_aol_format(self, tmp_path, capsys):
        path = tmp_path / "aol.txt"
        path.write_text(
            "AnonID\tQuery\tQueryTime\n"
            + "".join(f"1\tcar dealer\t2006-0{1 + i % 2}-01\n" for i in range(20))
        )
        code = main(["analyze", str(path), "--format", "aol", "--min-count", "2"])
        assert code == 0
        assert "stability" in capsys.readouterr().out

    def test_analyze_tiny_log_fails_gracefully(self, tmp_path, capsys):
        path = tmp_path / "one.txt"
        path.write_text("car dealer\n")
        assert main(["analyze", str(path)]) == 1

    def test_max_queries_limits(self, query_log_file, capsys):
        main(["analyze", str(query_log_file), "--max-queries", "10"])
        assert "queries: 10" in capsys.readouterr().out


class TestOnlineCommand:
    ARGS = [
        "online",
        "--vocabulary", "120",
        "--topics", "15",
        "--duration", "1200",
        "--window", "300",
        "--qps", "0.5",
        "--seed", "3",
    ]

    def test_runs_and_reports(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "online run:" in out
        assert "bounded" in out

    def test_report_byte_identical_across_runs(self, tmp_path, capsys):
        first = tmp_path / "one.json"
        second = tmp_path / "two.json"
        main(self.ARGS + ["--out", str(first)])
        main(self.ARGS + ["--out", str(second)])
        assert first.read_bytes() == second.read_bytes()
        doc = json.loads(first.read_text())
        assert doc["schema"] == "repro.online.report/v1"
        assert doc["total_operations"] > 0
