"""Tests for failure analysis (repro.cluster.failures)."""

import numpy as np
import pytest

from repro.cluster.failures import fail_nodes, worst_single_failure
from repro.core.placement import Placement
from repro.core.problem import PlacementProblem
from repro.core.replication import ReplicatedPlacement
from repro.exceptions import ProblemDefinitionError


@pytest.fixture
def problem():
    return PlacementProblem.build(
        {"a": 1.0, "b": 1.0, "c": 1.0, "d": 1.0}, 3, {("a", "b"): 0.5}
    )


@pytest.fixture
def single(problem):
    return Placement(problem, np.array([0, 0, 1, 2]))


@pytest.fixture
def replicated(problem):
    return ReplicatedPlacement(
        problem, np.array([[0, 1], [0, 2], [1, 2], [2, 0]])
    )


class TestFailNodes:
    def test_no_failure_full_availability(self, single):
        report = fail_nodes(single, [], [("a", "b")])
        assert report.object_availability == 1.0
        assert report.operation_availability == 1.0
        assert report.lost_objects == ()

    def test_single_copy_loses_node_contents(self, single):
        report = fail_nodes(single, [0])
        assert set(report.lost_objects) == {"a", "b"}
        assert report.surviving_objects == 2
        assert report.object_availability == pytest.approx(0.5)

    def test_operations_requiring_lost_objects_unservable(self, single):
        trace = [("a", "b"), ("c",), ("c", "d"), ("a", "c")]
        report = fail_nodes(single, [0], trace)
        assert report.total_operations == 4
        assert report.servable_operations == 2
        assert report.operation_availability == pytest.approx(0.5)

    def test_replication_survives_single_failure(self, replicated):
        trace = [("a", "b"), ("c", "d")]
        for node in (0, 1, 2):
            report = fail_nodes(replicated, [node], trace)
            assert report.lost_objects == ()
            assert report.operation_availability == 1.0

    def test_replication_double_failure_loses_objects(self, replicated):
        report = fail_nodes(replicated, [0, 1], [("a",), ("c",)])
        assert "a" in report.lost_objects  # copies on 0 and 1
        assert report.operation_availability == pytest.approx(0.5)

    def test_unknown_objects_in_operations_ignored(self, single):
        report = fail_nodes(single, [0], [("zzz",), ("zzz", "c")])
        assert report.servable_operations == 2

    def test_unknown_node_rejected(self, single):
        with pytest.raises(ProblemDefinitionError):
            fail_nodes(single, ["ghost"])

    def test_empty_trace(self, single):
        report = fail_nodes(single, [0])
        assert report.operation_availability == 1.0


class TestWorstSingleFailure:
    def test_finds_most_loaded_node(self, single):
        # Node 0 holds both "a" and "b"; every op touches one of them.
        trace = [("a", "c"), ("b", "d"), ("a", "b")]
        report = worst_single_failure(single, trace)
        assert report.failed_nodes == (0,)
        assert report.operation_availability == 0.0

    def test_replicated_placement_robust(self, replicated):
        trace = [("a", "b"), ("c", "d"), ("a", "d")]
        report = worst_single_failure(replicated, trace)
        assert report.operation_availability == 1.0


def _random_instance(rng, num_objects=12, num_nodes=4, num_ops=20):
    """A random problem, single placement, a replicated placement whose
    first copy matches the single one (second copy guaranteed distinct),
    and a trace."""
    objects = {f"o{i}": float(rng.integers(1, 5)) for i in range(num_objects)}
    names = sorted(objects)
    correlations = {}
    for _ in range(num_objects):
        i, j = sorted(rng.choice(num_objects, size=2, replace=False))
        if i != j:
            correlations[(names[int(i)], names[int(j)])] = float(
                rng.uniform(0.1, 0.9)
            )
    problem = PlacementProblem.build(objects, num_nodes, correlations)
    assignment = rng.integers(0, num_nodes, size=num_objects)
    single = Placement(problem, assignment)
    # Second copy on a different node than the first, always.
    spare = (assignment + 1 + rng.integers(0, num_nodes - 1, num_objects)) % (
        num_nodes
    )
    spare = np.where(spare == assignment, (assignment + 1) % num_nodes, spare)
    replicated = ReplicatedPlacement(
        problem, np.stack([assignment, spare], axis=1)
    )
    trace = [
        tuple(
            names[int(k)]
            for k in rng.choice(num_objects, size=int(rng.integers(1, 4)))
        )
        for _ in range(num_ops)
    ]
    return problem, single, replicated, trace


class TestAvailabilityProperties:
    """Property-style checks of the availability math."""

    def test_empty_failure_set_is_full_availability(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            _, single, replicated, trace = _random_instance(rng)
            for placement in (single, replicated):
                report = fail_nodes(placement, [], trace)
                assert report.object_availability == 1.0
                assert report.operation_availability == 1.0
                assert report.lost_objects == ()

    def test_all_nodes_failed_is_zero_availability(self):
        rng = np.random.default_rng(1)
        for _ in range(10):
            problem, single, replicated, trace = _random_instance(rng)
            everyone = list(range(problem.num_nodes))
            for placement in (single, replicated):
                report = fail_nodes(placement, everyone, trace)
                assert report.object_availability == 0.0
                assert len(report.lost_objects) == problem.num_objects
                # Only object-free operations (none here: every op
                # names at least one object) could still be served.
                assert report.operation_availability == 0.0

    def test_replication_never_hurts(self):
        """For every random failure set, a replicated placement whose
        first copy equals the single-copy placement is at least as
        available — object- and operation-wise."""
        rng = np.random.default_rng(2)
        for _ in range(50):
            problem, single, replicated, trace = _random_instance(rng)
            failure_count = int(rng.integers(0, problem.num_nodes + 1))
            failed = list(
                rng.choice(problem.num_nodes, size=failure_count, replace=False)
            )
            single_report = fail_nodes(single, failed, trace)
            replicated_report = fail_nodes(replicated, failed, trace)
            assert (
                replicated_report.object_availability
                >= single_report.object_availability
            )
            assert (
                replicated_report.operation_availability
                >= single_report.operation_availability
            )
            assert set(replicated_report.lost_objects) <= set(
                single_report.lost_objects
            )

    def test_availability_monotone_in_failures(self):
        """Failing more nodes never helps."""
        rng = np.random.default_rng(3)
        for _ in range(20):
            problem, single, _, trace = _random_instance(rng)
            order = list(rng.permutation(problem.num_nodes))
            previous = 1.0
            for k in range(problem.num_nodes + 1):
                report = fail_nodes(single, order[:k], trace)
                assert report.operation_availability <= previous + 1e-12
                previous = report.operation_availability
