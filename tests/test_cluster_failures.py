"""Tests for failure analysis (repro.cluster.failures)."""

import numpy as np
import pytest

from repro.cluster.failures import fail_nodes, worst_single_failure
from repro.core.placement import Placement
from repro.core.problem import PlacementProblem
from repro.core.replication import ReplicatedPlacement
from repro.exceptions import ProblemDefinitionError


@pytest.fixture
def problem():
    return PlacementProblem.build(
        {"a": 1.0, "b": 1.0, "c": 1.0, "d": 1.0}, 3, {("a", "b"): 0.5}
    )


@pytest.fixture
def single(problem):
    return Placement(problem, np.array([0, 0, 1, 2]))


@pytest.fixture
def replicated(problem):
    return ReplicatedPlacement(
        problem, np.array([[0, 1], [0, 2], [1, 2], [2, 0]])
    )


class TestFailNodes:
    def test_no_failure_full_availability(self, single):
        report = fail_nodes(single, [], [("a", "b")])
        assert report.object_availability == 1.0
        assert report.operation_availability == 1.0
        assert report.lost_objects == ()

    def test_single_copy_loses_node_contents(self, single):
        report = fail_nodes(single, [0])
        assert set(report.lost_objects) == {"a", "b"}
        assert report.surviving_objects == 2
        assert report.object_availability == pytest.approx(0.5)

    def test_operations_requiring_lost_objects_unservable(self, single):
        trace = [("a", "b"), ("c",), ("c", "d"), ("a", "c")]
        report = fail_nodes(single, [0], trace)
        assert report.total_operations == 4
        assert report.servable_operations == 2
        assert report.operation_availability == pytest.approx(0.5)

    def test_replication_survives_single_failure(self, replicated):
        trace = [("a", "b"), ("c", "d")]
        for node in (0, 1, 2):
            report = fail_nodes(replicated, [node], trace)
            assert report.lost_objects == ()
            assert report.operation_availability == 1.0

    def test_replication_double_failure_loses_objects(self, replicated):
        report = fail_nodes(replicated, [0, 1], [("a",), ("c",)])
        assert "a" in report.lost_objects  # copies on 0 and 1
        assert report.operation_availability == pytest.approx(0.5)

    def test_unknown_objects_in_operations_ignored(self, single):
        report = fail_nodes(single, [0], [("zzz",), ("zzz", "c")])
        assert report.servable_operations == 2

    def test_unknown_node_rejected(self, single):
        with pytest.raises(ProblemDefinitionError):
            fail_nodes(single, ["ghost"])

    def test_empty_trace(self, single):
        report = fail_nodes(single, [0])
        assert report.operation_availability == 1.0


class TestWorstSingleFailure:
    def test_finds_most_loaded_node(self, single):
        # Node 0 holds both "a" and "b"; every op touches one of them.
        trace = [("a", "c"), ("b", "d"), ("a", "b")]
        report = worst_single_failure(single, trace)
        assert report.failed_nodes == (0,)
        assert report.operation_availability == 0.0

    def test_replicated_placement_robust(self, replicated):
        trace = [("a", "b"), ("c", "d"), ("a", "d")]
        report = worst_single_failure(replicated, trace)
        assert report.operation_availability == 1.0
