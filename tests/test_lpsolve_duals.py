"""Tests for LP dual values (shadow prices)."""

import numpy as np
import pytest

from repro.core.lp import solve_placement_lp
from repro.core.problem import PlacementProblem
from repro.lpsolve import LinearProgram, Sense


class TestDuals:
    def test_binding_le_constraint_has_negative_dual(self):
        # min -x s.t. x <= 4: relaxing the row by 1 improves by -1.
        lp = LinearProgram()
        x = lp.add_variable(objective=-1.0)
        lp.add_constraint([(x, 1.0)], Sense.LE, 4.0, name="cap")
        result = lp.solve(backend="highs")
        assert result.duals is not None
        assert result.duals[0] == pytest.approx(-1.0)

    def test_slack_constraint_has_zero_dual(self):
        lp = LinearProgram()
        x = lp.add_variable(objective=1.0, upper=1.0)
        lp.add_constraint([(x, 1.0)], Sense.LE, 100.0, name="loose")
        result = lp.solve(backend="highs")
        assert result.duals[0] == pytest.approx(0.0)

    def test_ge_dual_sign_restored(self):
        # min x s.t. x >= 3: raising the rhs by 1 raises the optimum by 1.
        lp = LinearProgram()
        x = lp.add_variable(objective=1.0)
        lp.add_constraint([(x, 1.0)], Sense.GE, 3.0)
        result = lp.solve(backend="highs")
        # Convention: marginal w.r.t. the negated (<=) form, sign flipped
        # back, so the magnitude is the sensitivity |d obj / d rhs| = 1.
        assert abs(result.duals[0]) == pytest.approx(1.0)

    def test_strong_duality_objective_recovered(self):
        """b'y + bound terms == optimum on a pure-inequality program."""
        rng = np.random.default_rng(4)
        lp = LinearProgram()
        xs = [lp.add_variable(objective=float(c)) for c in rng.uniform(1, 2, 3)]
        rows = []
        for _ in range(3):
            coeffs = rng.uniform(0.1, 1.0, 3)
            rhs = float(rng.uniform(1, 2))
            lp.add_constraint(list(zip(xs, coeffs)), Sense.GE, rhs)
            rows.append(rhs)
        result = lp.solve(backend="highs")
        assert result.is_optimal
        # For min c'x, Ax >= b, x >= 0: optimum == b'y with y >= 0 —
        # the sign restoration makes GE duals nonnegative.
        duals = np.asarray(result.duals)
        assert np.all(duals >= -1e-9)
        assert float(np.dot(rows, duals)) == pytest.approx(
            result.objective, abs=1e-6
        )

    def test_mixed_senses_alignment(self):
        """Duals must land on the right original rows after reordering."""
        lp = LinearProgram()
        x = lp.add_variable(objective=1.0, upper=10.0)
        y = lp.add_variable(objective=1.0, upper=10.0)
        eq = lp.add_constraint([(x, 1.0)], Sense.EQ, 2.0, name="pin")
        ge = lp.add_constraint([(y, 1.0)], Sense.GE, 3.0, name="floor")
        le = lp.add_constraint([(y, 1.0)], Sense.LE, 100.0, name="roof")
        result = lp.solve(backend="highs")
        assert abs(result.duals[eq.index]) == pytest.approx(1.0)
        assert abs(result.duals[ge.index]) == pytest.approx(1.0)
        assert result.duals[le.index] == pytest.approx(0.0)


class TestCapacityShadowPrices:
    def test_binding_capacity_detected(self):
        # Two big correlated objects, small nodes: capacity binds.
        p = PlacementProblem.build(
            {"a": 3.0, "b": 3.0, "c": 1.0},
            {0: 4.0, 1: 4.0},
            {("a", "b"): 1.0, ("a", "c"): 0.4},
        )
        frac = solve_placement_lp(p, backend="highs")
        assert frac.capacity_duals is not None
        assert frac.capacity_duals.shape == (2,)

    def test_uncapacitated_nodes_have_nan(self):
        p = PlacementProblem.build({"a": 1.0, "b": 1.0}, 2, {("a", "b"): 0.5})
        frac = solve_placement_lp(p, backend="highs")
        if frac.capacity_duals is not None:
            assert np.all(np.isnan(frac.capacity_duals))

    def test_loose_capacity_zero_price(self):
        p = PlacementProblem.build(
            {"a": 1.0, "b": 1.0}, {0: 100.0, 1: 100.0}, {("a", "b"): 0.5}
        )
        frac = solve_placement_lp(p, backend="highs")
        assert frac.capacity_duals is not None
        assert np.allclose(np.nan_to_num(frac.capacity_duals), 0.0, atol=1e-9)
