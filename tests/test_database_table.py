"""Tests for tables (repro.database.table)."""

import numpy as np
import pytest

from repro.database.table import ROW_HEADER_BYTES, VALUE_BYTES, Table


@pytest.fixture
def orders():
    return Table(
        "orders",
        {
            "key": np.array([1, 2, 2, 3]),
            "value": np.array([10, 20, 25, 30]),
        },
    )


@pytest.fixture
def customers():
    return Table(
        "customers",
        {
            "key": np.array([1, 2, 4]),
            "value": np.array([100, 200, 400]),
            "attr": np.array([7, 8, 9]),
        },
    )


class TestConstruction:
    def test_shape(self, orders):
        assert orders.num_rows == 4
        assert orders.column_names == ("key", "value")

    def test_size_bytes(self, orders):
        per_row = ROW_HEADER_BYTES + 2 * VALUE_BYTES
        assert orders.size_bytes == 4 * per_row

    def test_mismatched_columns_rejected(self):
        with pytest.raises(ValueError, match="rows"):
            Table("t", {"a": np.array([1, 2]), "b": np.array([1])})

    def test_empty_table_allowed(self):
        t = Table("t", {"a": np.array([], dtype=np.int64)})
        assert t.num_rows == 0
        assert t.size_bytes == 0

    def test_no_columns_rejected(self):
        with pytest.raises(ValueError, match="at least one column"):
            Table("t", {})

    def test_two_dimensional_column_rejected(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            Table("t", {"a": np.zeros((2, 2))})

    def test_unknown_column(self, orders):
        with pytest.raises(KeyError, match="no column"):
            orders.column("ghost")
        assert not orders.has_column("ghost")


class TestSelect:
    def test_mask_filter(self, orders):
        filtered = orders.select(orders.column("value") > 15)
        assert filtered.num_rows == 3
        assert filtered.column("key").tolist() == [2, 2, 3]

    def test_bad_mask_shape(self, orders):
        with pytest.raises(ValueError, match="mask length"):
            orders.select(np.array([True]))


class TestJoin:
    def test_inner_join_matches(self, orders, customers):
        joined = orders.join(customers, on="key")
        # keys 1 (1 row) and 2 (2 rows) match; key 3 and 4 don't.
        assert joined.num_rows == 3
        assert sorted(joined.column("key").tolist()) == [1, 2, 2]

    def test_join_brings_other_columns(self, orders, customers):
        joined = orders.join(customers, on="key")
        assert "attr" in joined.column_names
        # Colliding "value" column is suffixed.
        assert "customers.value" in joined.column_names

    def test_join_values_aligned(self, orders, customers):
        joined = orders.join(customers, on="key")
        for key, attr in zip(joined.column("key"), joined.column("attr")):
            expected = {1: 7, 2: 8}[int(key)]
            assert int(attr) == expected

    def test_join_symmetric_row_count(self, orders, customers):
        a = orders.join(customers, on="key")
        b = customers.join(orders, on="key")
        assert a.num_rows == b.num_rows

    def test_join_missing_column(self, orders):
        other = Table("x", {"other_key": np.array([1])})
        with pytest.raises(KeyError):
            orders.join(other, on="key")

    def test_join_empty_result(self):
        a = Table("a", {"key": np.array([1, 2])})
        b = Table("b", {"key": np.array([3, 4])})
        assert a.join(b, on="key").num_rows == 0


class TestAggregate:
    def test_sum(self, orders):
        assert orders.aggregate("value", "sum") == 85.0

    def test_count(self, orders):
        assert orders.aggregate("value", "count") == 4.0

    def test_min_max_mean(self, orders):
        assert orders.aggregate("value", "min") == 10.0
        assert orders.aggregate("value", "max") == 30.0
        assert orders.aggregate("value", "mean") == pytest.approx(21.25)

    def test_empty_table_aggregates(self):
        t = Table("t", {"v": np.array([], dtype=np.int64)})
        assert t.aggregate("v", "sum") == 0.0
        assert np.isnan(t.aggregate("v", "mean"))

    def test_unknown_op(self, orders):
        with pytest.raises(ValueError, match="unknown aggregate"):
            orders.aggregate("value", "median")
