"""Tests for the end-to-end LPRR planner (repro.core.lprr)."""

import numpy as np
import pytest

from repro.core.hashing import hash_node, random_hash_placement
from repro.core.lprr import LPRRPlanner
from repro.core.problem import PlacementProblem


def clustered_problem(num_clusters=4, cluster_size=3, seed=0):
    """Clusters of strongly correlated equal-size objects plus noise pairs."""
    rng = np.random.default_rng(seed)
    objects, correlations = {}, {}
    for c in range(num_clusters):
        members = [f"c{c}_{i}" for i in range(cluster_size)]
        for m in members:
            objects[m] = 1.0
        for i in range(cluster_size):
            for j in range(i + 1, cluster_size):
                correlations[(members[i], members[j])] = 0.5 + 0.1 * rng.random()
    # Weak cross-cluster noise.
    names = list(objects)
    for _ in range(num_clusters):
        a, b = rng.choice(names, 2, replace=False)
        if a != b and (a, b) not in correlations and (b, a) not in correlations:
            correlations[(a, b)] = 0.01
    return PlacementProblem.build(objects, num_clusters, correlations)


class TestFullScope:
    def test_beats_hash_on_clustered_data(self):
        problem = clustered_problem()
        result = LPRRPlanner(seed=0).plan(problem)
        hash_cost = random_hash_placement(problem).communication_cost()
        assert result.cost < hash_cost

    def test_cost_property_matches_placement(self):
        problem = clustered_problem()
        result = LPRRPlanner(seed=0).plan(problem)
        assert result.cost == pytest.approx(result.placement.communication_cost())

    def test_scope_none_covers_all_objects(self):
        problem = clustered_problem()
        result = LPRRPlanner(seed=0).plan(problem)
        assert len(result.scope_objects) == problem.num_objects

    def test_capacity_factor_bounds_load(self):
        problem = clustered_problem(num_clusters=3, cluster_size=4)
        result = LPRRPlanner(seed=1, capacity_factor=2.0, rounding_trials=20).plan(
            problem
        )
        loads = result.placement.node_loads()
        average = problem.total_size / problem.num_nodes
        # Best-of-k with feasibility filtering keeps loads near 2x average.
        assert loads.max() <= 2.0 * average * 1.1

    def test_deterministic_given_seed(self):
        problem = clustered_problem()
        a = LPRRPlanner(seed=3).plan(problem)
        b = LPRRPlanner(seed=3).plan(problem)
        assert np.array_equal(a.placement.assignment, b.placement.assignment)

    def test_lp_bound_below_cost_over_scoped_pairs(self):
        problem = clustered_problem()
        result = LPRRPlanner(seed=0).plan(problem)
        # Full scope: the LP bound is a lower bound for the final cost.
        assert result.lp_lower_bound <= result.cost + 1e-6


class TestPartialScope:
    def test_out_of_scope_objects_are_hash_placed(self):
        problem = clustered_problem(num_clusters=3, cluster_size=3)
        planner = LPRRPlanner(scope=4, seed=0, hash_salt="salted")
        result = planner.plan(problem)
        scoped = set(result.scope_objects)
        for obj in problem.object_ids:
            if obj not in scoped:
                expected = hash_node(obj, problem.num_nodes, "salted")
                assert result.placement.assignment[problem.object_index(obj)] == expected

    def test_scope_limits_lp_size(self):
        problem = clustered_problem(num_clusters=4, cluster_size=4)
        full = LPRRPlanner(seed=0).plan(problem)
        partial = LPRRPlanner(scope=6, seed=0).plan(problem)
        assert partial.lp_stats.num_variables < full.lp_stats.num_variables

    def test_wider_scope_does_not_hurt_much(self):
        """More optimized objects should give (weakly) better cost on
        clustered instances, modulo rounding noise."""
        problem = clustered_problem(num_clusters=4, cluster_size=4, seed=2)
        small = LPRRPlanner(scope=4, seed=0, rounding_trials=20).plan(problem)
        large = LPRRPlanner(scope=16, seed=0, rounding_trials=20).plan(problem)
        assert large.cost <= small.cost + 1e-9

    def test_scope_larger_than_problem_is_clipped(self):
        problem = clustered_problem(num_clusters=2, cluster_size=2)
        result = LPRRPlanner(scope=10_000, seed=0).plan(problem)
        assert len(result.scope_objects) == problem.num_objects

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            LPRRPlanner(scope=0)
        with pytest.raises(ValueError):
            LPRRPlanner(capacity_factor=0.0)


class TestCapacityModes:
    def test_explicit_capacities_used_when_factor_none(self):
        problem = PlacementProblem.build(
            {"a": 2.0, "b": 2.0, "c": 2.0, "d": 2.0},
            {0: 4.0, 1: 4.0},
            {("a", "b"): 0.5, ("c", "d"): 0.5},
        )
        result = LPRRPlanner(capacity_factor=None, seed=0).plan(problem)
        assert result.effective_capacities.tolist() == [4.0, 4.0]
        assert result.cost == pytest.approx(0.0)

    def test_factor_capacities_scale_with_scoped_load(self):
        problem = clustered_problem(num_clusters=2, cluster_size=3)
        result = LPRRPlanner(capacity_factor=2.0, seed=0).plan(problem)
        expected = 2.0 * problem.total_size / problem.num_nodes
        assert result.effective_capacities[0] == pytest.approx(expected)

    def test_factor_capacity_at_least_largest_object(self):
        problem = PlacementProblem.build(
            {"huge": 100.0, "tiny": 1.0}, 4, {("huge", "tiny"): 0.5}
        )
        result = LPRRPlanner(capacity_factor=2.0, seed=0).plan(problem)
        assert result.effective_capacities[0] >= 100.0


class TestFractionalSerialization:
    """LPRRResult carries its fractional solution through round trips."""

    def test_round_trip_preserves_fractional(self):
        from repro.core.lprr import LPRRResult

        problem = clustered_problem()
        result = LPRRPlanner(seed=0, backend="fo", rounding="argmax").plan(
            problem
        )
        assert result.fractional is not None
        rebuilt = LPRRResult.from_dict(result.to_dict(), problem)
        np.testing.assert_allclose(
            rebuilt.fractional.fractions, result.fractional.fractions
        )
        assert np.array_equal(
            rebuilt.placement.assignment, result.placement.assignment
        )

    def test_from_dict_tolerates_pre_warm_start_documents(self):
        from repro.core.lprr import LPRRResult

        problem = clustered_problem()
        result = LPRRPlanner(seed=0).plan(problem)
        doc = result.to_dict()
        doc.pop("fractional", None)
        rebuilt = LPRRResult.from_dict(doc, problem)
        assert rebuilt.fractional is None
        assert rebuilt.cost == pytest.approx(result.cost)

    def test_warm_start_bypasses_plan_cache(self):
        from repro.core.lp import WarmStart

        problem = clustered_problem()
        cold = LPRRPlanner(seed=0, backend="fo", rounding="argmax").plan(
            problem
        )
        warm_start = WarmStart.from_fractional(cold.fractional)
        planner = LPRRPlanner(
            seed=0, backend="fo", rounding="argmax", warm_start=warm_start
        )
        warm = planner.plan(problem)
        assert planner.last_solver_info["warm_start"] == "hit"
        assert planner.last_solver_info["warm_hits"] == problem.num_objects
        assert warm.from_cache is False
