"""Tests for the Planner API and the deprecated strategy shims."""

import numpy as np
import pytest

from repro.core.problem import PlacementProblem
from repro.core.strategies import (
    PlanConfig,
    PlanResult,
    available_planners,
    available_strategies,
    get_planner,
    get_strategy,
    plan,
    register_planner,
    register_strategy,
)


@pytest.fixture
def problem():
    return PlacementProblem.build(
        objects={"a": 2.0, "b": 2.0, "c": 2.0, "d": 2.0},
        nodes={0: 5.0, 1: 5.0},
        correlations={("a", "b"): 0.4, ("c", "d"): 0.4, ("a", "c"): 0.01},
    )


class TestPlanConfig:
    def test_defaults_select_legacy_engine(self):
        config = PlanConfig()
        assert config.jobs is None
        assert config.cache_dir is None
        assert config.make_cache() is None

    def test_with_options(self):
        config = PlanConfig().with_options(scope=10, jobs=2)
        assert config.scope == 10
        assert config.jobs == 2
        assert config.seed == 0  # untouched

    def test_frozen(self):
        with pytest.raises(Exception):
            PlanConfig().seed = 5

    def test_make_cache(self, tmp_path):
        config = PlanConfig(cache_dir=tmp_path)
        cache = config.make_cache()
        assert cache is not None
        assert config.with_options(use_cache=False).make_cache() is None


class TestRegistry:
    def test_builtins_registered(self):
        names = available_planners()
        assert {
            "hash",
            "greedy",
            "lprr",
            "round_robin",
            "best_fit_decreasing",
            "spectral",
            "local_search",
        } <= set(names)
        assert names == sorted(names)

    def test_unknown_planner(self):
        with pytest.raises(KeyError, match="unknown planner"):
            get_planner("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_planner("lprr")(lambda problem, *, config: None)


class TestPlanResults:
    def test_every_planner_returns_plan_result(self, problem):
        for name in available_planners():
            result = plan(problem, name)
            assert isinstance(result, PlanResult)
            assert result.planner == name
            assert result.cost == pytest.approx(
                result.placement.communication_cost()
            )
            assert result.elapsed_seconds >= 0
            assert "feasible" in result.diagnostics

    def test_lprr_diagnostics(self, problem):
        result = plan(problem, "lprr", PlanConfig(seed=0))
        assert result.diagnostics["cache"] == "off"
        assert result.diagnostics["jobs"] is None
        assert "lp_lower_bound" in result.diagnostics
        assert result.details is not None
        assert result.details.rounding.trials == 10

    def test_config_threads_through(self, problem):
        result = plan(problem, "lprr", PlanConfig(seed=0, rounding_trials=3))
        assert result.details.rounding.trials == 3

    def test_to_dict(self, problem):
        doc = plan(problem, "lprr", PlanConfig(seed=0)).to_dict()
        assert doc["schema"] == "repro/plan-result/v1"
        assert doc["planner"] == "lprr"
        assert len(doc["assignment"]) == problem.num_objects
        assert doc["objects"] == [str(o) for o in problem.object_ids]
        assert "details" in doc

    def test_parallel_config(self, problem):
        serial = plan(problem, "lprr", PlanConfig(seed=5, jobs=1))
        pooled = plan(problem, "lprr", PlanConfig(seed=5, jobs=2))
        assert np.array_equal(
            serial.placement.assignment, pooled.placement.assignment
        )

    def test_cache_diagnostics(self, problem, tmp_path):
        config = PlanConfig(seed=0, cache_dir=tmp_path)
        assert plan(problem, "lprr", config).diagnostics["cache"] == "miss"
        assert plan(problem, "lprr", config).diagnostics["cache"] == "hit"


class TestLegacyShims:
    def test_get_strategy_warns(self):
        with pytest.warns(DeprecationWarning, match="get_strategy"):
            get_strategy("hash")

    def test_available_strategies_warns(self):
        with pytest.warns(DeprecationWarning, match="available_strategies"):
            names = available_strategies()
        assert "lprr" in names

    def test_register_strategy_warns_and_bridges(self, problem):
        from repro.core.placement import Placement

        def custom(prob):
            return Placement(
                prob, np.zeros(prob.num_objects, dtype=np.int64)
            )

        with pytest.warns(DeprecationWarning, match="register_strategy"):
            register_strategy("all_on_node_zero")(custom)
        try:
            with pytest.warns(DeprecationWarning):
                assert get_strategy("all_on_node_zero") is custom
            # Bridged into the planner registry too.
            result = plan(problem, "all_on_node_zero")
            assert set(result.placement.assignment) == {0}
        finally:
            from repro.core import strategies

            strategies._LEGACY.pop("all_on_node_zero", None)
            strategies._PLANNERS.pop("all_on_node_zero", None)

    def test_unknown_strategy_message_preserved(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(KeyError, match="unknown strategy"):
                get_strategy("nope")

    def test_legacy_matches_planner_output(self, problem):
        # The shim returns the exact pre-1.1 callable; for deterministic
        # strategies its output matches the planner under defaults.
        for name in ("hash", "round_robin", "best_fit_decreasing"):
            with pytest.warns(DeprecationWarning):
                legacy = get_strategy(name)(problem)
            modern = plan(problem, name).placement
            assert np.array_equal(legacy.assignment, modern.assignment)

    def test_legacy_lprr_is_seed_zero_planner(self, problem):
        from repro.core.lprr import LPRRPlanner

        with pytest.warns(DeprecationWarning):
            legacy = get_strategy("lprr")(problem)
        direct = LPRRPlanner(seed=0).plan(problem).placement
        assert np.array_equal(legacy.assignment, direct.assignment)


class TestSerializationUnification:
    def test_rounding_result_round_trip(self, problem):
        from repro.core.lp import solve_placement_lp
        from repro.core.rounding import RoundingResult, round_best_of

        result = round_best_of(solve_placement_lp(problem), trials=3, rng=0)
        restored = RoundingResult.from_dict(result.to_dict(), problem)
        assert restored.cost == pytest.approx(result.cost)
        assert restored.trial_costs == result.trial_costs
        assert np.array_equal(
            restored.placement.assignment, result.placement.assignment
        )

    def test_lprr_result_round_trip(self, problem):
        from repro.core.lprr import LPRRPlanner, LPRRResult

        result = LPRRPlanner(seed=0).plan(problem)
        restored = LPRRResult.from_dict(result.to_dict(), problem)
        assert restored.cost == pytest.approx(result.cost)
        assert restored.scope_objects == result.scope_objects
        assert restored.lp_lower_bound == pytest.approx(result.lp_lower_bound)
        assert np.array_equal(
            restored.placement.assignment, result.placement.assignment
        )

    def test_evaluation_summary_round_trip(self):
        from repro.search.engine import EvaluationSummary

        summary = EvaluationSummary(
            queries=10,
            total_bytes=1234,
            total_hops=7,
            local_fraction=0.4,
            mean_bytes_per_query=123.4,
        )
        assert EvaluationSummary.from_dict(summary.to_dict()) == summary

    def test_wrong_problem_rejected(self, problem):
        from repro.core.lprr import LPRRPlanner, LPRRResult
        from repro.exceptions import TraceFormatError

        doc = LPRRPlanner(seed=0).plan(problem).to_dict()
        other = PlacementProblem.build(
            {"x": 1.0, "y": 1.0}, 2, {("x", "y"): 0.5}
        )
        with pytest.raises(TraceFormatError):
            LPRRResult.from_dict(doc, other)
