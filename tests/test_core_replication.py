"""Tests for replicated placement (repro.core.replication)."""

import numpy as np
import pytest

from repro.cluster import synthetic_topology
from repro.core.placement import Placement
from repro.core.problem import PlacementProblem
from repro.core.replication import (
    ReplicatedPlacement,
    _spread_violations_loop,
    greedy_replicated_placement,
    hash_replicated_placement,
    replicate_hash,
    spread_replicated_placement,
    spread_violations,
)
from repro.exceptions import PlacementError, ReplicationError


@pytest.fixture
def problem():
    return PlacementProblem.build(
        objects={"a": 1.0, "b": 1.0, "c": 1.0, "d": 1.0},
        nodes={0: 10.0, 1: 10.0, 2: 10.0},
        correlations={("a", "b"): 0.8, ("c", "d"): 0.6, ("a", "c"): 0.1},
    )


class TestReplicatedPlacement:
    def test_any_copy_pair_is_local(self, problem):
        # a: {0,1}, b: {1,2} share node 1 -> (a,b) local.
        assignment = np.array([[0, 1], [1, 2], [0, 2], [1, 2]])
        placement = ReplicatedPlacement(problem, assignment)
        # (a,b) share 1; (c,d) share 2; (a,c) share 0 -> cost 0.
        assert placement.communication_cost() == pytest.approx(0.0)

    def test_fully_disjoint_copies_pay(self, problem):
        assignment = np.array([[0, 1], [2, 0], [1, 2], [0, 1]])
        placement = ReplicatedPlacement(problem, assignment)
        # a:{0,1}, b:{2,0} share 0 -> local; c:{1,2}, d:{0,1} share 1 ->
        # local; a:{0,1}, c:{1,2} share 1 -> local.
        assert placement.communication_cost() == pytest.approx(0.0)

    def test_cost_counts_uncovered_pairs(self):
        p = PlacementProblem.build(
            {"a": 1.0, "b": 1.0}, 4, {("a", "b"): 0.5}
        )
        placement = ReplicatedPlacement(p, np.array([[0, 1], [2, 3]]))
        assert placement.communication_cost() == pytest.approx(0.5)

    def test_duplicate_replica_nodes_rejected(self, problem):
        with pytest.raises(PlacementError, match="sharing a node"):
            ReplicatedPlacement(problem, np.array([[0, 0], [1, 2], [0, 1], [1, 2]]))

    def test_node_loads_count_every_copy(self, problem):
        assignment = np.array([[0, 1], [0, 1], [0, 1], [0, 1]])
        placement = ReplicatedPlacement(problem, assignment)
        assert placement.node_loads().tolist() == [4.0, 4.0, 0.0]

    def test_feasibility(self):
        p = PlacementProblem.build({"a": 6.0, "b": 6.0}, {0: 10.0, 1: 10.0}, {})
        placement = ReplicatedPlacement(p, np.array([[0, 1], [0, 1]]))
        assert not placement.is_feasible()  # 12 > 10 on both nodes

    def test_primary_extraction(self, problem):
        assignment = np.array([[0, 1], [1, 2], [2, 0], [0, 1]])
        placement = ReplicatedPlacement(problem, assignment)
        assert placement.primary().assignment.tolist() == [0, 1, 2, 0]

    def test_nodes_of(self, problem):
        placement = ReplicatedPlacement(
            problem, np.array([[0, 2], [1, 2], [0, 1], [1, 2]])
        )
        assert placement.nodes_of("a") == [0, 2]

    def test_shape_validation(self, problem):
        with pytest.raises(PlacementError, match="num_objects"):
            ReplicatedPlacement(problem, np.zeros((2, 2), dtype=np.int64))


class TestHashReplication:
    def test_distinct_nodes_per_object(self, problem):
        placement = hash_replicated_placement(problem, replicas=3)
        for obj in problem.object_ids:
            nodes = placement.nodes_of(obj)
            assert len(set(nodes)) == 3

    def test_deterministic(self, problem):
        a = hash_replicated_placement(problem, replicas=2)
        b = hash_replicated_placement(problem, replicas=2)
        assert np.array_equal(a.assignment, b.assignment)

    def test_replication_reduces_or_keeps_cost(self, problem):
        single = hash_replicated_placement(problem, replicas=1)
        double = hash_replicated_placement(problem, replicas=2)
        # More copies can only help the any-copy cost in expectation;
        # check the monotone property on this fixed instance.
        assert double.communication_cost() <= single.communication_cost() + 1e-12

    def test_too_many_replicas_rejected(self, problem):
        with pytest.raises(ValueError, match="distinct copies"):
            hash_replicated_placement(problem, replicas=4)
        with pytest.raises(ValueError, match="at least 1"):
            hash_replicated_placement(problem, replicas=0)


class TestGreedyReplication:
    def test_replicas_cover_split_pairs(self):
        # Primary forced split by capacity; replica should cover it.
        p = PlacementProblem.build(
            {"a": 3.0, "b": 3.0},
            {0: 7.0, 1: 7.0},
            {("a", "b"): 1.0},
        )
        def split_primary(problem):
            return Placement(problem, np.array([0, 1]))

        placement = greedy_replicated_placement(
            p, replicas=2, primary_strategy=split_primary
        )
        assert placement.communication_cost() == pytest.approx(0.0)

    def test_respects_capacity_when_possible(self, problem):
        placement = greedy_replicated_placement(problem, replicas=2)
        assert placement.is_feasible()

    def test_beats_hash_on_clustered_workload(self):
        rng = np.random.default_rng(0)
        objects = {f"o{i}": 1.0 for i in range(12)}
        corr = {(f"o{2*i}", f"o{2*i+1}"): 0.5 + 0.1 * rng.random() for i in range(6)}
        p = PlacementProblem.build(objects, 6, corr)
        greedy = greedy_replicated_placement(p, replicas=2)
        hashed = hash_replicated_placement(p, replicas=2)
        assert greedy.communication_cost() <= hashed.communication_cost()

    def test_single_replica_equals_primary(self, problem):
        placement = greedy_replicated_placement(problem, replicas=1)
        assert placement.replication_factor == 1
        assert placement.communication_cost() == pytest.approx(
            placement.primary().communication_cost()
        )

    def test_custom_primary_strategy(self, problem):
        from repro.core.hashing import random_hash_placement

        placement = greedy_replicated_placement(
            problem, replicas=2, primary_strategy=random_hash_placement
        )
        assert np.array_equal(
            placement.assignment[:, 0], random_hash_placement(problem).assignment
        )


@pytest.fixture
def zoned():
    """A 12-object / 8-node instance with a 2x2x2 topology."""
    rng = np.random.default_rng(3)
    objects = {f"o{i}": float(rng.integers(1, 4)) for i in range(12)}
    corr = {
        (f"o{2 * i}", f"o{2 * i + 1}"): 0.4 + 0.05 * i for i in range(6)
    }
    problem = PlacementProblem.build(objects, 8, corr)
    topology = synthetic_topology(8, zones=2, racks_per_zone=2)
    return problem, topology


class TestSpreadValidation:
    def test_typed_error_for_shape(self, problem):
        with pytest.raises(ReplicationError, match="num_objects"):
            ReplicatedPlacement(problem, np.zeros((2, 2), dtype=np.int64))
        # Back-compat: the typed error still is a PlacementError and a
        # ValueError, so pre-1.7 handlers keep catching it.
        assert issubclass(ReplicationError, PlacementError)
        assert issubclass(ReplicationError, ValueError)

    def test_error_names_offending_domain(self, zoned):
        problem, topology = zoned
        # Nodes 0 and 1 share zone 0 (and rack 0).
        assignment = np.tile(np.array([0, 1]), (problem.num_objects, 1))
        with pytest.raises(ReplicationError, match=r"sharing zone:0"):
            ReplicatedPlacement(problem, assignment, topology=topology)

    def test_error_names_offending_rack(self, zoned):
        problem, topology = zoned
        assignment = np.tile(np.array([0, 1]), (problem.num_objects, 1))
        with pytest.raises(ReplicationError, match=r"sharing rack:0"):
            ReplicatedPlacement(
                problem, assignment, topology=topology, spread="rack"
            )

    def test_topology_size_mismatch(self, zoned):
        problem, _ = zoned
        small = synthetic_topology(4, zones=2, racks_per_zone=1)
        assignment = np.tile(np.array([0, 1]), (problem.num_objects, 1))
        with pytest.raises(ReplicationError, match="topology covers"):
            ReplicatedPlacement(problem, assignment, topology=small)

    def test_cross_zone_assignment_accepted(self, zoned):
        problem, topology = zoned
        # Nodes 0 (zone 0) and 4 (zone 1).
        assignment = np.tile(np.array([0, 4]), (problem.num_objects, 1))
        placement = ReplicatedPlacement(problem, assignment, topology=topology)
        assert placement.spread == "zone"

    def test_spread_violations_matches_loop(self, zoned):
        problem, topology = zoned
        rng = np.random.default_rng(0)
        ids = topology.domain_ids("zone")
        for _ in range(20):
            assignment = rng.integers(0, 8, size=(12, 2))
            assert np.array_equal(
                spread_violations(assignment, ids),
                _spread_violations_loop(assignment, ids),
            )


class TestReplicateHash:
    def test_copies_land_in_distinct_zones(self, zoned):
        problem, topology = zoned
        placement = replicate_hash(problem, topology, replicas=2)
        ids = topology.domain_ids("zone")
        for row in placement.assignment:
            assert len({int(ids[k]) for k in row}) == 2

    def test_deterministic_and_salt_sensitive(self, zoned):
        problem, topology = zoned
        a = replicate_hash(problem, topology, replicas=2)
        b = replicate_hash(problem, topology, replicas=2)
        salted = replicate_hash(problem, topology, replicas=2, salt="x")
        assert np.array_equal(a.assignment, b.assignment)
        assert not np.array_equal(a.assignment, salted.assignment)

    def test_too_many_replicas_for_topology(self, zoned):
        problem, topology = zoned
        with pytest.raises(ReplicationError, match="distinct copies"):
            replicate_hash(problem, topology, replicas=9)


class TestSpreadReplicatedPlacement:
    def test_zero_spread_violations(self, zoned):
        problem, topology = zoned
        placement = spread_replicated_placement(problem, topology, replicas=2)
        ids = topology.domain_ids(placement.spread)
        assert spread_violations(placement.assignment, ids).size == 0

    def test_no_worse_than_hash_baseline(self, zoned):
        problem, topology = zoned
        ours = spread_replicated_placement(problem, topology, replicas=2)
        hashed = replicate_hash(problem, topology, replicas=2)
        assert ours.communication_cost() <= hashed.communication_cost() + 1e-12

    def test_respects_primary_strategy(self, zoned):
        problem, topology = zoned
        def fixed(p):
            return Placement(p, np.arange(p.num_objects) % p.num_nodes)

        placement = spread_replicated_placement(
            problem, topology, replicas=2, primary_strategy=fixed
        )
        assert np.array_equal(
            placement.assignment[:, 0], fixed(problem).assignment
        )

    def test_three_replicas_fall_back_to_rack_spread(self, zoned):
        problem, topology = zoned
        placement = spread_replicated_placement(problem, topology, replicas=3)
        assert placement.spread == "rack"  # only 2 zones for 3 copies
        ids = topology.domain_ids("rack")
        assert spread_violations(placement.assignment, ids).size == 0
