"""Tests for replicated placement (repro.core.replication)."""

import numpy as np
import pytest

from repro.core.placement import Placement
from repro.core.problem import PlacementProblem
from repro.core.replication import (
    ReplicatedPlacement,
    greedy_replicated_placement,
    hash_replicated_placement,
)
from repro.exceptions import PlacementError


@pytest.fixture
def problem():
    return PlacementProblem.build(
        objects={"a": 1.0, "b": 1.0, "c": 1.0, "d": 1.0},
        nodes={0: 10.0, 1: 10.0, 2: 10.0},
        correlations={("a", "b"): 0.8, ("c", "d"): 0.6, ("a", "c"): 0.1},
    )


class TestReplicatedPlacement:
    def test_any_copy_pair_is_local(self, problem):
        # a: {0,1}, b: {1,2} share node 1 -> (a,b) local.
        assignment = np.array([[0, 1], [1, 2], [0, 2], [1, 2]])
        placement = ReplicatedPlacement(problem, assignment)
        # (a,b) share 1; (c,d) share 2; (a,c) share 0 -> cost 0.
        assert placement.communication_cost() == pytest.approx(0.0)

    def test_fully_disjoint_copies_pay(self, problem):
        assignment = np.array([[0, 1], [2, 0], [1, 2], [0, 1]])
        placement = ReplicatedPlacement(problem, assignment)
        # a:{0,1}, b:{2,0} share 0 -> local; c:{1,2}, d:{0,1} share 1 ->
        # local; a:{0,1}, c:{1,2} share 1 -> local.
        assert placement.communication_cost() == pytest.approx(0.0)

    def test_cost_counts_uncovered_pairs(self):
        p = PlacementProblem.build(
            {"a": 1.0, "b": 1.0}, 4, {("a", "b"): 0.5}
        )
        placement = ReplicatedPlacement(p, np.array([[0, 1], [2, 3]]))
        assert placement.communication_cost() == pytest.approx(0.5)

    def test_duplicate_replica_nodes_rejected(self, problem):
        with pytest.raises(PlacementError, match="sharing a node"):
            ReplicatedPlacement(problem, np.array([[0, 0], [1, 2], [0, 1], [1, 2]]))

    def test_node_loads_count_every_copy(self, problem):
        assignment = np.array([[0, 1], [0, 1], [0, 1], [0, 1]])
        placement = ReplicatedPlacement(problem, assignment)
        assert placement.node_loads().tolist() == [4.0, 4.0, 0.0]

    def test_feasibility(self):
        p = PlacementProblem.build({"a": 6.0, "b": 6.0}, {0: 10.0, 1: 10.0}, {})
        placement = ReplicatedPlacement(p, np.array([[0, 1], [0, 1]]))
        assert not placement.is_feasible()  # 12 > 10 on both nodes

    def test_primary_extraction(self, problem):
        assignment = np.array([[0, 1], [1, 2], [2, 0], [0, 1]])
        placement = ReplicatedPlacement(problem, assignment)
        assert placement.primary().assignment.tolist() == [0, 1, 2, 0]

    def test_nodes_of(self, problem):
        placement = ReplicatedPlacement(
            problem, np.array([[0, 2], [1, 2], [0, 1], [1, 2]])
        )
        assert placement.nodes_of("a") == [0, 2]

    def test_shape_validation(self, problem):
        with pytest.raises(PlacementError, match="num_objects"):
            ReplicatedPlacement(problem, np.zeros((2, 2), dtype=np.int64))


class TestHashReplication:
    def test_distinct_nodes_per_object(self, problem):
        placement = hash_replicated_placement(problem, replicas=3)
        for obj in problem.object_ids:
            nodes = placement.nodes_of(obj)
            assert len(set(nodes)) == 3

    def test_deterministic(self, problem):
        a = hash_replicated_placement(problem, replicas=2)
        b = hash_replicated_placement(problem, replicas=2)
        assert np.array_equal(a.assignment, b.assignment)

    def test_replication_reduces_or_keeps_cost(self, problem):
        single = hash_replicated_placement(problem, replicas=1)
        double = hash_replicated_placement(problem, replicas=2)
        # More copies can only help the any-copy cost in expectation;
        # check the monotone property on this fixed instance.
        assert double.communication_cost() <= single.communication_cost() + 1e-12

    def test_too_many_replicas_rejected(self, problem):
        with pytest.raises(ValueError, match="distinct copies"):
            hash_replicated_placement(problem, replicas=4)
        with pytest.raises(ValueError, match="at least 1"):
            hash_replicated_placement(problem, replicas=0)


class TestGreedyReplication:
    def test_replicas_cover_split_pairs(self):
        # Primary forced split by capacity; replica should cover it.
        p = PlacementProblem.build(
            {"a": 3.0, "b": 3.0},
            {0: 7.0, 1: 7.0},
            {("a", "b"): 1.0},
        )
        def split_primary(problem):
            return Placement(problem, np.array([0, 1]))

        placement = greedy_replicated_placement(
            p, replicas=2, primary_strategy=split_primary
        )
        assert placement.communication_cost() == pytest.approx(0.0)

    def test_respects_capacity_when_possible(self, problem):
        placement = greedy_replicated_placement(problem, replicas=2)
        assert placement.is_feasible()

    def test_beats_hash_on_clustered_workload(self):
        rng = np.random.default_rng(0)
        objects = {f"o{i}": 1.0 for i in range(12)}
        corr = {(f"o{2*i}", f"o{2*i+1}"): 0.5 + 0.1 * rng.random() for i in range(6)}
        p = PlacementProblem.build(objects, 6, corr)
        greedy = greedy_replicated_placement(p, replicas=2)
        hashed = hash_replicated_placement(p, replicas=2)
        assert greedy.communication_cost() <= hashed.communication_cost()

    def test_single_replica_equals_primary(self, problem):
        placement = greedy_replicated_placement(problem, replicas=1)
        assert placement.replication_factor == 1
        assert placement.communication_cost() == pytest.approx(
            placement.primary().communication_cost()
        )

    def test_custom_primary_strategy(self, problem):
        from repro.core.hashing import random_hash_placement

        placement = greedy_replicated_placement(
            problem, replicas=2, primary_strategy=random_hash_placement
        )
        assert np.array_equal(
            placement.assignment[:, 0], random_hash_placement(problem).assignment
        )
