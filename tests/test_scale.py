"""Scale smoke tests: the vectorized paths stay fast at real sizes.

These are correctness-at-scale checks, not benchmarks — they build a
problem an order of magnitude beyond the bench defaults and assert the
core evaluation paths complete quickly and consistently.
"""

import time

import numpy as np
import pytest

from repro.core.greedy import greedy_placement
from repro.core.hashing import random_hash_placement
from repro.core.importance import importance_ranking, top_important
from repro.core.partial import scoped_placement
from repro.core.placement import Placement
from repro.core.problem import PlacementProblem


@pytest.fixture(scope="module")
def big_problem():
    rng = np.random.default_rng(0)
    t = 20_000
    object_ids = [f"o{i}" for i in range(t)]
    sizes = rng.pareto(1.5, t) + 0.5
    # ~60k random pairs over a sparse graph.
    m = 60_000
    left = rng.integers(0, t, m)
    right = rng.integers(0, t, m)
    keep = left != right
    pairs = np.stack(
        [np.minimum(left[keep], right[keep]), np.maximum(left[keep], right[keep])],
        axis=1,
    )
    # Dedupe.
    keys = pairs[:, 0] * t + pairs[:, 1]
    _, unique_idx = np.unique(keys, return_index=True)
    pairs = pairs[unique_idx]
    correlations = rng.uniform(0.001, 0.1, pairs.shape[0])
    costs = np.minimum(sizes[pairs[:, 0]], sizes[pairs[:, 1]])
    return PlacementProblem(
        object_ids,
        sizes,
        list(range(20)),
        np.full(20, np.inf),
        pairs,
        correlations,
        costs,
    )


class TestScale:
    def test_cost_evaluation_fast(self, big_problem):
        placement = random_hash_placement(big_problem)
        start = time.perf_counter()
        for _ in range(10):
            placement.communication_cost()
        elapsed = time.perf_counter() - start
        assert elapsed < 2.0  # vectorized: ~ms per evaluation

    def test_importance_ranking_covers_everything(self, big_problem):
        start = time.perf_counter()
        ranking = importance_ranking(big_problem)
        elapsed = time.perf_counter() - start
        assert len(ranking) == big_problem.num_objects
        assert elapsed < 10.0

    def test_subproblem_extraction(self, big_problem):
        scoped = top_important(big_problem, 2000)
        start = time.perf_counter()
        sub = big_problem.subproblem(scoped)
        elapsed = time.perf_counter() - start
        assert sub.num_objects == 2000
        assert elapsed < 5.0

    def test_greedy_at_scale(self, big_problem):
        capped = big_problem.with_capacities(
            2.0 * big_problem.total_size / big_problem.num_nodes
        )
        start = time.perf_counter()
        placement = greedy_placement(capped)
        elapsed = time.perf_counter() - start
        assert placement.assignment.shape == (big_problem.num_objects,)
        assert elapsed < 30.0

    def test_scoped_placement_at_scale(self, big_problem):
        start = time.perf_counter()
        placement = scoped_placement(big_problem, 1500, greedy_placement)
        elapsed = time.perf_counter() - start
        assert placement.communication_cost() <= random_hash_placement(
            big_problem
        ).communication_cost()
        assert elapsed < 30.0

    def test_loads_and_violations_vectorized(self, big_problem):
        placement = Placement(
            big_problem,
            np.random.default_rng(1).integers(
                0, big_problem.num_nodes, big_problem.num_objects
            ),
        )
        loads = placement.node_loads()
        assert loads.shape == (20,)
        assert loads.sum() == pytest.approx(big_problem.total_size)
