"""Cross-cutting property-based tests (hypothesis).

Each property here spans modules: random problems flow through
strategies, rounding, repair, and migration, and structural invariants
must hold for every generated instance.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.greedy import greedy_placement
from repro.core.hashing import random_hash_placement
from repro.core.importance import importance_ranking, top_important
from repro.core.lp import solve_placement_lp
from repro.core.migration import diff_placements, select_migrations
from repro.core.partial import scoped_placement
from repro.core.placement import Placement
from repro.core.problem import PlacementProblem
from repro.core.repair import repair_capacity
from repro.core.rounding import round_fractional


@st.composite
def problems(draw, max_objects=10, max_nodes=4, capacitated=True):
    """Random CCA instances with feasible capacities."""
    t = draw(st.integers(2, max_objects))
    n = draw(st.integers(2, max_nodes))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    sizes = rng.uniform(0.5, 3.0, t)
    objects = {f"o{i}": float(sizes[i]) for i in range(t)}
    if capacitated:
        slack = draw(st.floats(1.3, 3.0))
        capacity = float(sizes.sum() / n * slack + sizes.max())
        nodes = {k: capacity for k in range(n)}
    else:
        nodes = n
    correlations = {}
    for i in range(t):
        for j in range(i + 1, t):
            if rng.random() < 0.5:
                correlations[(f"o{i}", f"o{j}")] = float(rng.uniform(0.01, 1.0))
    return PlacementProblem.build(objects, nodes, correlations)


class TestStrategyInvariants:
    @settings(max_examples=30, deadline=None)
    @given(problem=problems())
    def test_every_strategy_is_total(self, problem):
        for placement in (
            random_hash_placement(problem),
            greedy_placement(problem),
        ):
            assert placement.assignment.shape == (problem.num_objects,)
            assert np.all(placement.assignment >= 0)
            assert np.all(placement.assignment < problem.num_nodes)

    @settings(max_examples=30, deadline=None)
    @given(problem=problems())
    def test_cost_bounded_by_total_weight(self, problem):
        for placement in (
            random_hash_placement(problem),
            greedy_placement(problem),
        ):
            cost = placement.communication_cost()
            assert -1e-12 <= cost <= problem.total_pair_weight + 1e-12

    @settings(max_examples=30, deadline=None)
    @given(problem=problems(), scope=st.integers(0, 10))
    def test_scoped_placement_total_and_deterministic(self, problem, scope):
        a = scoped_placement(problem, scope, greedy_placement)
        b = scoped_placement(problem, scope, greedy_placement)
        assert np.array_equal(a.assignment, b.assignment)

    @settings(max_examples=30, deadline=None)
    @given(problem=problems())
    def test_importance_ranking_is_permutation(self, problem):
        ranking = importance_ranking(problem)
        assert sorted(map(str, ranking)) == sorted(map(str, problem.object_ids))
        assert top_important(problem, 3) == ranking[:3]


class TestLPAndRounding:
    @settings(max_examples=20, deadline=None)
    @given(problem=problems(max_objects=7, max_nodes=3))
    def test_lp_bound_sound_and_rounding_total(self, problem):
        fractional = solve_placement_lp(problem)
        assert fractional.lower_bound >= -1e-9
        assert np.allclose(fractional.fractions.sum(axis=1), 1.0, atol=1e-6)
        placement, _ = round_fractional(fractional, rng=0)
        assert placement.assignment.shape == (problem.num_objects,)
        # Any rounded placement costs at least the LP bound.
        assert placement.communication_cost() >= fractional.lower_bound - 1e-6

    @settings(max_examples=15, deadline=None)
    @given(problem=problems(max_objects=6, max_nodes=3))
    def test_expected_loads_within_capacity(self, problem):
        fractional = solve_placement_lp(problem)
        assert np.all(
            fractional.expected_node_loads() <= problem.capacities + 1e-6
        )


class TestRepairProperties:
    @settings(max_examples=30, deadline=None)
    @given(problem=problems(), seed=st.integers(0, 1000))
    def test_repair_yields_feasible_or_noop(self, problem, seed):
        rng = np.random.default_rng(seed)
        assignment = rng.integers(0, problem.num_nodes, problem.num_objects)
        placement = Placement(problem, assignment)
        repaired = repair_capacity(placement, tolerance=0.0)
        assert not repaired.capacity_violations()

    @settings(max_examples=30, deadline=None)
    @given(problem=problems(), seed=st.integers(0, 1000))
    def test_repair_idempotent(self, problem, seed):
        rng = np.random.default_rng(seed)
        assignment = rng.integers(0, problem.num_nodes, problem.num_objects)
        repaired = repair_capacity(Placement(problem, assignment))
        again = repair_capacity(repaired)
        assert again is repaired


class TestMigrationProperties:
    @settings(max_examples=30, deadline=None)
    @given(problem=problems(capacitated=False), seed=st.integers(0, 1000))
    def test_diff_apply_reaches_target(self, problem, seed):
        rng = np.random.default_rng(seed)
        current = Placement(
            problem, rng.integers(0, problem.num_nodes, problem.num_objects)
        )
        target = Placement(
            problem, rng.integers(0, problem.num_nodes, problem.num_objects)
        )
        plan = diff_placements(current, target)
        assert plan.apply(current) == target
        assert plan.bytes_moved == pytest.approx(
            sum(m.size for m in plan.migrations)
        )

    @settings(max_examples=30, deadline=None)
    @given(
        problem=problems(capacitated=False),
        seed=st.integers(0, 1000),
        budget_factor=st.floats(0.0, 1.0),
    )
    def test_selection_never_increases_cost(self, problem, seed, budget_factor):
        rng = np.random.default_rng(seed)
        current = Placement(
            problem, rng.integers(0, problem.num_nodes, problem.num_objects)
        )
        target = Placement(
            problem, rng.integers(0, problem.num_nodes, problem.num_objects)
        )
        budget = problem.total_size * budget_factor
        plan = select_migrations(current, target, budget_bytes=budget)
        assert plan.bytes_moved <= budget + 1e-9
        assert plan.cost_after <= plan.cost_before + 1e-9

    @settings(max_examples=20, deadline=None)
    @given(problem=problems(capacitated=False), seed=st.integers(0, 1000))
    def test_unbudgeted_selection_at_most_full_plan_bytes(self, problem, seed):
        rng = np.random.default_rng(seed)
        current = Placement(
            problem, rng.integers(0, problem.num_nodes, problem.num_objects)
        )
        target = Placement(
            problem, rng.integers(0, problem.num_nodes, problem.num_objects)
        )
        full = diff_placements(current, target)
        selected = select_migrations(current, target)
        assert selected.bytes_moved <= full.bytes_moved + 1e-9
        # Selection skips harmful moves, so it ends at least as cheap
        # as the better of (stay, go fully).
        assert selected.cost_after <= max(full.cost_after, full.cost_before) + 1e-9
