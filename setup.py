"""Setup shim: enables legacy editable installs where the `wheel`
package is unavailable (offline environments)."""

from setuptools import setup

setup()
