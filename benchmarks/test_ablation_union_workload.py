"""Ablation: union-like operations (the second §3.2 reduction).

The paper's evaluation uses intersection queries, but §3.2 also defines
the union model: all requested objects ship to the largest one's node.
This bench builds the placement problem with the union-largest
correlation estimator, replays the trace in the engine's union mode,
and checks that correlation-aware placement helps there too — with the
estimator matched to the execution model beating a mismatched one.
"""

from repro.analysis.reporting import format_table
from repro.core.lprr import LPRRPlanner
from repro.core.placement import Placement
from repro.search.engine import DistributedSearchEngine, build_placement_problem

NUM_NODES = 10
SCOPE = 400


def test_union_workload(benchmark, study):
    def run():
        union_problem = build_placement_problem(
            study.index,
            study.log,
            NUM_NODES,
            correlation_mode="union_largest",
            min_support=study.config.min_support,
        )
        mismatched_problem = study.placement_problem(NUM_NODES)  # two_smallest

        hash_placement = study.place_hash(NUM_NODES)
        matched = LPRRPlanner(scope=SCOPE, seed=0).plan(union_problem).placement
        mismatched = Placement(
            union_problem,
            LPRRPlanner(scope=SCOPE, seed=0)
            .plan(mismatched_problem)
            .placement.assignment,
        )

        results = {}
        for name, placement in (
            ("hash", hash_placement),
            ("lprr (two-smallest model)", mismatched),
            ("lprr (union model)", matched),
        ):
            engine = DistributedSearchEngine(study.index, placement)
            results[name] = engine.execute_log(study.log, mode="union").total_bytes
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    baseline = results["hash"]
    print(
        "\n"
        + format_table(
            ["placement", "union-replay bytes", "vs hash"],
            [[name, b, b / baseline] for name, b in results.items()],
        )
    )

    # Correlation-aware placement helps union workloads too.
    assert results["lprr (union model)"] < baseline
    # And the estimator matched to the execution model is at least as
    # good as optimizing for the wrong operation class.
    assert (
        results["lprr (union model)"]
        <= results["lprr (two-smallest model)"] * 1.05
    )