"""Figure 7: normalized communication cost vs system size.

Paper (scope 10000, 10..100 nodes): LPRR saves 73-86% against random
hashing across all system sizes; greedy is only competitive at small
node counts (large per-node capacity) and degrades as the node count
grows.  The bench sweeps a scaled node grid and asserts: LPRR saves
substantially everywhere, LPRR beats greedy at large node counts, and
greedy's *relative* advantage decays with system size.
"""

from repro.experiments.fig7 import NodeSweepConfig, run_node_sweep

NODE_COUNTS = (10, 20, 40, 70, 100)
SCOPE = 400


def test_fig7_node_sweep(benchmark, study, results_cache):
    config = NodeSweepConfig(
        node_counts=NODE_COUNTS, scope=SCOPE, rounding_trials=10
    )
    result = benchmark.pedantic(
        lambda: run_node_sweep(study, config), rounds=1, iterations=1
    )
    results_cache["fig7"] = result
    print("\n" + result.render())

    norm_lprr = result.normalized_lprr
    norm_greedy = result.normalized_greedy

    # LPRR saves at every system size (paper: 73-86%).
    assert all(v < 0.75 for v in norm_lprr)
    lo, hi = result.lprr_saving_range
    assert lo > 0.25

    # LPRR beats greedy at the largest system size — greedy gets
    # trapped in local optima at fine grouping granularity.
    assert norm_lprr[-1] < norm_greedy[-1]

    # Greedy degrades relative to LPRR as nodes grow.
    gap_small = norm_greedy[0] - norm_lprr[0]
    gap_large = norm_greedy[-1] - norm_lprr[-1]
    assert gap_large >= gap_small - 0.05
