"""Ablation: LP size and solve-time scaling (Section 3.1).

The paper argues the program has O(|T| * |N|) variables and constraints
when the correlation set E is sparse, and reports up to 48 hours of
LPsolve time at scope 10000.  This bench measures program size and
HiGHS solve time across scopes and node counts and asserts the O(T*N)
variable-count law.
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.core.importance import top_important
from repro.core.lp import build_placement_lp, solve_placement_lp

SCOPES = (100, 200, 400)
NODES = (5, 10, 20)


def _scoped_subproblem(problem, scope, n_nodes):
    scoped = top_important(problem, scope)
    caps = np.full(
        n_nodes, 2.0 * sum(problem.size_of(o) for o in scoped) / n_nodes
    )
    return problem.subproblem(scoped, capacities=caps)


def test_lp_scaling(benchmark, study):
    def sweep():
        rows = []
        for n in NODES:
            problem = study.placement_problem(n)
            for scope in SCOPES:
                sub = _scoped_subproblem(problem, scope, n)
                fractional = solve_placement_lp(sub)
                stats = fractional.stats
                rows.append(
                    (
                        scope,
                        n,
                        sub.num_pairs,
                        stats.num_variables,
                        stats.num_constraints,
                        stats.solve_seconds,
                    )
                )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(
        "\n"
        + format_table(
            ["scope", "nodes", "pairs", "vars", "constraints", "seconds"],
            [list(r) for r in rows],
            float_format="{:.3f}",
        )
    )

    # O(|T|*|N|) variables: vars = (t + |E|) * n, and |E| = O(t) in
    # sparse workloads, so vars / (t * n) is bounded by a constant.
    ratios = [vars_ / (scope * n) for scope, n, _, vars_, _, _ in rows]
    assert max(ratios) < 12.0

    # Doubling nodes at fixed scope roughly doubles variables.
    by_key = {(scope, n): vars_ for scope, n, _, vars_, _, _ in rows}
    for scope in SCOPES:
        growth = by_key[(scope, 20)] / by_key[(scope, 5)]
        assert 2.0 < growth < 8.0
