"""Ablation: does the §4.2 importance ranking matter?

Partial optimization lives or dies by which objects enter the scope.
This bench fixes the scope budget and swaps the ranking: the paper's
pair-cost ranking, a size-only ranking, a query-frequency ranking, and
a random one.  The paper's ranking should capture the most
communication weight per scoped object.
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.core.greedy import greedy_placement
from repro.core.hashing import hash_node
from repro.core.importance import top_important
from repro.core.placement import Placement

NUM_NODES = 10
SCOPE = 300


def scoped_greedy_with_ids(study, problem, scoped_ids):
    """Greedy over an explicit scope, hash for the rest."""
    scoped_set = set(scoped_ids)
    assignment = np.empty(problem.num_objects, dtype=np.int64)
    for i, obj in enumerate(problem.object_ids):
        if obj not in scoped_set:
            assignment[i] = hash_node(obj, problem.num_nodes)
    caps = np.full(
        NUM_NODES,
        2.0 * sum(problem.size_of(o) for o in scoped_ids) / NUM_NODES,
    )
    sub = problem.subproblem(list(scoped_ids), capacities=caps)
    placed = greedy_placement(sub)
    for local_i, obj in enumerate(sub.object_ids):
        assignment[problem.object_index(obj)] = placed.assignment[local_i]
    return Placement(problem, assignment)


def test_importance_ranking(benchmark, study):
    problem = study.placement_problem(NUM_NODES)
    frequencies = study.log.keyword_frequencies()

    rankings = {
        "pair-cost (paper §4.2)": top_important(problem, SCOPE),
        "by index size": sorted(
            problem.object_ids, key=lambda o: -problem.size_of(o)
        )[:SCOPE],
        "by query frequency": sorted(
            problem.object_ids, key=lambda o: (-frequencies.get(o, 0), str(o))
        )[:SCOPE],
        "random": list(
            np.random.default_rng(0).choice(
                np.asarray(problem.object_ids, dtype=object),
                size=SCOPE,
                replace=False,
            )
        ),
    }

    def run():
        hash_bytes = study.replay_cost(study.place_hash(NUM_NODES))
        return hash_bytes, {
            name: study.replay_cost(scoped_greedy_with_ids(study, problem, ids))
            for name, ids in rankings.items()
        }

    hash_bytes, results = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        "\n"
        + format_table(
            ["ranking", "bytes", "vs hash"],
            [[name, b, b / hash_bytes] for name, b in results.items()],
        )
    )

    paper = results["pair-cost (paper §4.2)"]
    # The paper's ranking beats random scope selection decisively ...
    assert paper < results["random"] * 0.9
    # ... and is at least competitive with the single-signal rankings.
    assert paper <= results["by index size"] * 1.05
    assert paper <= results["by query frequency"] * 1.10