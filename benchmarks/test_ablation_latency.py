"""Ablation: byte savings translate into latency savings.

The paper reports communication volume; this bench replays the same
query stream through the timing simulator (Poisson arrivals, FCFS
uplinks, wire + scan time) under hash and LPRR placements and checks
that the byte reduction shows up as mean and tail latency reduction.
"""

from repro.analysis.reporting import format_table
from repro.search.simulation import TimingModel, simulate_latencies

NUM_NODES = 10
SCOPE = 400
TIMING = TimingModel(
    bandwidth_bytes_per_s=50e6, link_latency_s=0.3e-3, scan_bytes_per_s=2e9
)


def test_latency_comparison(benchmark, study):
    placements = {
        "hash": study.place_hash(NUM_NODES),
        "lprr": study.place_lprr(NUM_NODES, SCOPE),
    }

    def run():
        return {
            name: simulate_latencies(
                study.index,
                placement,
                study.log,
                arrival_rate_qps=500.0,
                timing=TIMING,
                seed=0,
            )
            for name, placement in placements.items()
        }

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [
            name,
            report.mean_s * 1e3,
            report.percentile_s(95) * 1e3,
            report.percentile_s(99) * 1e3,
            float(report.uplink_utilization().max()),
        ]
        for name, report in reports.items()
    ]
    print(
        "\n"
        + format_table(
            ["placement", "mean ms", "p95 ms", "p99 ms", "max uplink util"],
            rows,
            float_format="{:.4f}",
        )
    )

    hash_report, lprr_report = reports["hash"], reports["lprr"]
    assert lprr_report.mean_s < hash_report.mean_s
    assert lprr_report.percentile_s(95) <= hash_report.percentile_s(95) + 1e-9
    # Less traffic -> lower peak uplink pressure.
    assert (
        lprr_report.uplink_utilization().max()
        <= hash_report.uplink_utilization().max() + 1e-9
    )