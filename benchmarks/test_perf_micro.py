"""Micro-benchmarks of the hot paths (multi-round timings).

Unlike the figure benches (one-shot regenerations), these measure the
steady-state cost of the operations a deployment calls repeatedly:
cost evaluation, rounding, LP construction, and query execution.
"""

import numpy as np
import pytest

from repro.core.lp import build_placement_lp, solve_placement_lp
from repro.core.hashing import random_hash_placement
from repro.core.importance import top_important
from repro.core.rounding import round_fractional
from repro.search.engine import DistributedSearchEngine


@pytest.fixture(scope="module")
def scoped(study):
    problem = study.placement_problem(10)
    ids = top_important(problem, 300)
    caps = np.full(10, 2.0 * sum(problem.size_of(o) for o in ids) / 10)
    return problem.subproblem(ids, capacities=caps)


def test_perf_cost_evaluation(benchmark, study):
    problem = study.placement_problem(10)
    placement = random_hash_placement(problem)
    cost = benchmark(placement.communication_cost)
    assert cost >= 0


def test_perf_importance_ranking(benchmark, study):
    problem = study.placement_problem(10)
    ranking = benchmark(lambda: top_important(problem, 400))
    assert len(ranking) == 400


def test_perf_lp_build(benchmark, scoped):
    lp = benchmark(lambda: build_placement_lp(scoped))
    assert lp.num_variables > 0


def test_perf_rounding(benchmark, scoped):
    fractional = solve_placement_lp(scoped)
    rng = np.random.default_rng(0)
    placement, _ = benchmark(lambda: round_fractional(fractional, rng))
    assert placement.assignment.shape == (scoped.num_objects,)


def test_perf_parallel_rounding(benchmark, scoped, bench_jobs):
    """Best-of-8 rounding on the engine selected by --jobs.

    Run with ``--jobs 1`` and ``--jobs 2`` to compare inline vs pooled;
    the resulting placement is identical either way (spawned per-trial
    seeds), so this also smoke-tests the determinism contract.
    """
    from repro.parallel import parallel_round_best_of

    fractional = solve_placement_lp(scoped)
    result = benchmark(
        lambda: parallel_round_best_of(
            fractional, trials=8, root_seed=0, jobs=bench_jobs
        )
    )
    assert result.trials == 8
    baseline = parallel_round_best_of(fractional, trials=8, root_seed=0, jobs=1)
    assert result.trial_costs == baseline.trial_costs


def test_perf_engine_query(benchmark, study):
    placement = study.place_hash(10)
    engine = DistributedSearchEngine(study.index, placement)
    queries = [q for q in study.log][:50]

    def run_batch():
        return sum(engine.execute(q).bytes_transferred for q in queries)

    total = benchmark(run_batch)
    assert total >= 0
