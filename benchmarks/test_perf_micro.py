"""Micro-benchmarks of the hot paths (multi-round timings).

Unlike the figure benches (one-shot regenerations), these measure the
steady-state cost of the operations a deployment calls repeatedly:
cost evaluation, rounding, LP construction, and query execution.

The ``*_loop`` / ``*_sequential`` / ``*_cold`` variants pin the legacy
implementation next to its vectorized fast path so ``pytest-benchmark``
output shows the speedup directly; ``repro bench`` tracks the same
ratios against a committed baseline (``BENCH_5.json``).
"""

import numpy as np
import pytest

from repro.core.lp import _build_placement_lp_loop, build_placement_lp, solve_placement_lp
from repro.core.hashing import random_hash_placement
from repro.core.importance import top_important
from repro.core.rounding import _round_trials_loop, round_fractional, round_trials_batched
from repro.online.sketch import CountMinSketch
from repro.search.engine import DistributedSearchEngine


@pytest.fixture(scope="module")
def scoped(study):
    problem = study.placement_problem(10)
    ids = top_important(problem, 300)
    caps = np.full(10, 2.0 * sum(problem.size_of(o) for o in ids) / 10)
    return problem.subproblem(ids, capacities=caps)


def test_perf_cost_evaluation(benchmark, study):
    problem = study.placement_problem(10)
    placement = random_hash_placement(problem)
    cost = benchmark(placement.communication_cost)
    assert cost >= 0


def test_perf_importance_ranking(benchmark, study):
    problem = study.placement_problem(10)
    ranking = benchmark(lambda: top_important(problem, 400))
    assert len(ranking) == 400


def test_perf_lp_build(benchmark, scoped):
    lp = benchmark(lambda: build_placement_lp(scoped))
    assert lp.num_variables > 0


def test_perf_lp_build_loop(benchmark, scoped):
    """Legacy row-at-a-time assembly — baseline for test_perf_lp_build."""
    lp = benchmark(lambda: _build_placement_lp_loop(scoped))
    assert lp.num_variables > 0


def test_perf_rounding(benchmark, scoped):
    fractional = solve_placement_lp(scoped)
    rng = np.random.default_rng(0)
    placement, _ = benchmark(lambda: round_fractional(fractional, rng))
    assert placement.assignment.shape == (scoped.num_objects,)


def test_perf_parallel_rounding(benchmark, scoped, bench_jobs):
    """Best-of-8 rounding on the engine selected by --jobs.

    Run with ``--jobs 1`` and ``--jobs 2`` to compare inline vs pooled;
    the resulting placement is identical either way (spawned per-trial
    seeds), so this also smoke-tests the determinism contract.
    """
    from repro.parallel import parallel_round_best_of

    fractional = solve_placement_lp(scoped)
    result = benchmark(
        lambda: parallel_round_best_of(
            fractional, trials=8, root_seed=0, jobs=bench_jobs
        )
    )
    assert result.trials == 8
    baseline = parallel_round_best_of(fractional, trials=8, root_seed=0, jobs=1)
    assert result.trial_costs == baseline.trial_costs


def test_perf_engine_query(benchmark, study):
    placement = study.place_hash(10)
    engine = DistributedSearchEngine(study.index, placement)
    queries = [q for q in study.log][:50]

    def run_batch():
        return sum(engine.execute(q).bytes_transferred for q in queries)

    total = benchmark(run_batch)
    assert total >= 0


def test_perf_rounding_batched(benchmark, scoped):
    """All 32 trials advanced together as one vectorized sweep."""
    fractional = solve_placement_lp(scoped)
    seqs = np.random.SeedSequence(0).spawn(32)
    assignments, _ = benchmark(lambda: round_trials_batched(fractional, seqs))
    assert assignments.shape == (32, scoped.num_objects)


def test_perf_rounding_trial_loop(benchmark, scoped):
    """Same 32 trials, one at a time — baseline for the batched sweep."""
    fractional = solve_placement_lp(scoped)
    seqs = np.random.SeedSequence(0).spawn(32)
    assignments, _ = benchmark(lambda: _round_trials_loop(fractional, seqs))
    assert assignments.shape == (32, scoped.num_objects)


def test_perf_log_replay_dedup(benchmark, study):
    """Deduplicating replay: each distinct keyword tuple runs once."""
    engine = DistributedSearchEngine(study.index, study.place_hash(10))
    stats = benchmark(lambda: engine.execute_log(study.log, dedup=True))
    assert stats.queries == len(study.log)


def test_perf_log_replay_sequential(benchmark, study):
    """One-at-a-time replay — baseline for the deduplicating path."""
    engine = DistributedSearchEngine(study.index, study.place_hash(10))
    stats = benchmark(lambda: engine.execute_log(study.log, dedup=False))
    assert stats.queries == len(study.log)


@pytest.fixture(scope="module")
def ingest_pairs(study):
    from repro.core.correlation import operation_pairs

    pairs = []
    for query in study.log:
        pairs.extend(operation_pairs(query.keywords))
    return pairs


def test_perf_cm_ingest_batched(benchmark, ingest_pairs):
    """Vectorized, hash-memoizing Count-Min ingest (update_many)."""
    def run():
        sketch = CountMinSketch(width=2048, depth=4, seed=0)
        sketch.update_many(ingest_pairs)
        return sketch

    sketch = benchmark(run)
    assert sketch.total == len(ingest_pairs)


def test_perf_cm_ingest_loop(benchmark, ingest_pairs):
    """One hash-and-scatter per pair — baseline for update_many."""
    def run():
        sketch = CountMinSketch(width=2048, depth=4, seed=0)
        for pair in ingest_pairs:
            sketch.add(pair)
        return sketch

    sketch = benchmark(run)
    assert sketch.total == len(ingest_pairs)


def test_perf_sort_key_warm_cache(benchmark, study):
    """Query execution with the per-engine sort-key cache warm.

    Together with the ``_cold_cache`` variant this isolates the win
    from caching each word's ``(df, word)`` execution sort key: the
    keys are pure functions of the index, so one engine serving many
    queries pays the tuple construction once per word, not per query.
    """
    engine = DistributedSearchEngine(study.index, study.place_hash(10))
    queries = [q for q in study.log][:200]
    engine.execute_log(queries)  # warm the cache

    def run_batch():
        return sum(engine.execute(q).hops for q in queries)

    total = benchmark(run_batch)
    assert total >= 0


def test_perf_sort_key_cold_cache(benchmark, study):
    """Same batch with the sort-key cache cleared before every pass."""
    engine = DistributedSearchEngine(study.index, study.place_hash(10))
    queries = [q for q in study.log][:200]

    def run_batch():
        engine._sort_key_cache.clear()
        return sum(engine.execute(q).hops for q in queries)

    total = benchmark(run_batch)
    assert total >= 0


def test_perf_disabled_obs_overhead(scoped):
    """Disabled-path obs calls add no measurable cost to the sweep.

    Times ``round_trials_batched`` bare, then the identical sweep
    wrapped in the full set of disabled observability helpers (span,
    counter, histogram, journal record).  When instrumentation is off
    each helper is one global read, so the wrapped sweep must run at
    the bare sweep's speed — the assertion allows 25% plus a fixed
    epsilon purely for scheduler noise at these sub-millisecond
    scales.  Not a ``benchmark`` fixture test: the contract is the
    *ratio* between the two variants, which pytest-benchmark cannot
    assert on.
    """
    import time

    from repro import obs

    previous = obs.current()
    obs.disable()
    try:
        fractional = solve_placement_lp(scoped)
        seqs = np.random.SeedSequence(0).spawn(16)

        def plain():
            return round_trials_batched(fractional, seqs)

        def instrumented():
            with obs.span("sweep", trials=16):
                assignments, rounds = round_trials_batched(fractional, seqs)
            obs.counter("sweep.trials").inc(16)
            obs.histogram("sweep.cost").observe(float(assignments[0, 0]))
            obs.record("sweep.done", trials=16)
            return assignments, rounds

        def best_of(fn, repeats=7):
            fn()  # warm-up
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - start)
            return best

        bare = best_of(plain)
        wrapped = best_of(instrumented)
        assert wrapped <= bare * 1.25 + 1e-3, (
            f"disabled obs path added measurable overhead: "
            f"bare {bare * 1e3:.3f}ms vs wrapped {wrapped * 1e3:.3f}ms"
        )
    finally:
        if previous is not None:
            obs.enable(previous)
