"""Ablation: the placement claim generalizes beyond search.

The paper motivates CCA with two applications — keyword indices and
distributed database aggregation (Section 1.1) — but evaluates only
the first.  This bench runs the full strategy comparison on the
database substrate's join workload: same algorithms, same cost model,
different application.  The ordering must hold here too.
"""

from repro.analysis.reporting import format_table
from repro.core import LPRRPlanner, greedy_placement, random_hash_placement
from repro.database import (
    DistributedDatabase,
    SchemaConfig,
    generate_queries,
    generate_schema,
)

NUM_NODES = 6
CONFIG = SchemaConfig(
    num_groups=8,
    dimensions_per_group=3,
    fact_rows=1500,
    dimension_rows=300,
    seed=0,
)


def test_database_workload(benchmark):
    tables = generate_schema(CONFIG)
    queries = generate_queries(
        CONFIG, num_queries=1500, cross_group_fraction=0.08, seed=1
    )
    bootstrap = DistributedDatabase(tables, {t.name: 0 for t in tables})
    problem = bootstrap.placement_problem(queries, NUM_NODES, min_support=2)
    capped = problem.with_capacities(2.0 * problem.total_size / NUM_NODES)

    def replay(placement):
        mapping = {str(k): v for k, v in placement.to_mapping().items()}
        return DistributedDatabase(tables, mapping).execute_log(queries)

    def run():
        return {
            "hash": replay(random_hash_placement(problem)),
            "greedy": replay(greedy_placement(capped)),
            "lprr": replay(LPRRPlanner(seed=0).plan(problem).placement),
        }

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    baseline = stats["hash"].total_bytes
    print(
        "\n"
        + format_table(
            ["strategy", "bytes", "vs hash", "local"],
            [
                [name, s.total_bytes, s.total_bytes / baseline, s.local_fraction]
                for name, s in stats.items()
            ],
        )
    )

    assert stats["lprr"].total_bytes < stats["hash"].total_bytes
    assert stats["greedy"].total_bytes < stats["hash"].total_bytes
    # LPRR matches or beats greedy on the join workload too.
    assert stats["lprr"].total_bytes <= stats["greedy"].total_bytes * 1.05
    # Correlation-aware placement makes most in-group joins local.
    assert stats["lprr"].local_fraction > 0.6