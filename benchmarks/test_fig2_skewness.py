"""Figure 2(A): skewness of keyword-pair correlations.

Paper: the most correlated pair of the Jan-2006 Ask.com trace is 177x
more correlated than the 1000th pair, with a smooth log-scale decay.
The synthetic trace must show the same strongly skewed curve; the
exact ratio depends on trace scale, so the bench asserts strong skew
(>20x across the tracked curve) rather than the literal 177.
"""

from repro.experiments.fig2 import SkewStabilityConfig, run_skewness_stability


def test_fig2a_skewness(benchmark, study, results_cache):
    result = benchmark.pedantic(
        lambda: run_skewness_stability(study, SkewStabilityConfig(top_pairs=1000)),
        rounds=1,
        iterations=1,
    )
    results_cache["fig2"] = result
    print("\n" + result.render())

    probs = result.period1_probabilities
    assert len(result.ranks) >= 5
    # Monotone non-increasing along the ranked curve.
    assert all(a >= b for a, b in zip(probs, probs[1:]))
    # Strong skew: head dominates tail by over an order of magnitude.
    assert result.skew > 20.0
    # Every tracked pair genuinely co-occurred.
    assert probs[-1] > 0.0
