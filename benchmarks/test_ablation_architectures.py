"""Ablation: keyword-partitioned vs document-partitioned search.

Footnote 1 of the paper restricts the study to keyword-based
partitioning, where placement matters.  This bench quantifies the
architectural context: document partitioning ships per-node result
fragments for *every* multi-node query regardless of correlations,
while keyword partitioning's traffic depends entirely on placement —
terrible under hashing, small under LPRR.
"""

from repro.analysis.reporting import format_table
from repro.search.docpartition import DocumentPartitionedEngine
from repro.search.engine import DistributedSearchEngine
from repro.workloads.corpus_gen import generate_corpus
from repro.workloads.query_gen import QueryWorkloadModel

NUM_NODES = 10


def test_architecture_comparison(benchmark, study):
    # Rebuild a corpus matching the study config so the doc engine has
    # the raw documents (the shared study only keeps the index).
    config = study.config
    corpus = generate_corpus(
        config.num_documents,
        config.vocabulary_size,
        words_per_doc=config.words_per_doc,
        zipf_exponent=config.corpus_zipf_exponent,
        seed=config.seed,
    )

    def run():
        doc_engine = DocumentPartitionedEngine(corpus, NUM_NODES)
        doc_bytes = doc_engine.execute_log(study.log).total_bytes
        kw_hash = DistributedSearchEngine(
            study.index, study.place_hash(NUM_NODES)
        ).execute_log(study.log).total_bytes
        kw_lprr = DistributedSearchEngine(
            study.index, study.place_lprr(NUM_NODES, 400)
        ).execute_log(study.log).total_bytes
        return doc_bytes, kw_hash, kw_lprr

    doc_bytes, kw_hash, kw_lprr = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        "\n"
        + format_table(
            ["architecture", "bytes", "vs doc-partitioned"],
            [
                ["document-partitioned", doc_bytes, 1.0],
                ["keyword + hash", kw_hash, kw_hash / doc_bytes],
                ["keyword + LPRR", kw_lprr, kw_lprr / doc_bytes],
            ],
        )
    )

    # The architectural claim that motivates the paper's setting:
    # correlation-aware keyword partitioning beats both alternatives.
    assert kw_lprr < kw_hash
    assert kw_lprr < doc_bytes