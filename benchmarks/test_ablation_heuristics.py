"""Ablation: how much of LPRR's win is just "any decent heuristic"?

The related work points at the task-assignment literature's local
heuristics.  This bench runs the full heuristic ladder at one setting —
greedy (the paper's baseline), steepest-descent local search with swaps
(the classic task-assignment move), and LPRR — to locate the paper's
algorithm on it.  Expected ordering: local search recovers much of the
greedy-to-LPRR gap (it can undo early mistakes), but LPRR stays ahead
— its component-level view is global from the start.
"""

from repro.analysis.reporting import format_table
from repro.core.local_search import local_search_placement
from repro.core.partial import scoped_placement

NUM_NODES = 10
SCOPE = 400


def test_heuristic_ladder(benchmark, study):
    problem = study.placement_problem(NUM_NODES)

    def run():
        hash_bytes = study.replay_cost(study.place_hash(NUM_NODES))
        greedy_bytes = study.replay_cost(study.place_greedy(NUM_NODES, SCOPE))
        local = scoped_placement(
            problem,
            SCOPE,
            lambda sub: local_search_placement(sub, rng=0),
            capacity_factor=2.0,
        )
        local_bytes = study.replay_cost(local)
        lprr_bytes = study.replay_cost(study.place_lprr(NUM_NODES, SCOPE))
        return hash_bytes, greedy_bytes, local_bytes, lprr_bytes

    hash_bytes, greedy_bytes, local_bytes, lprr_bytes = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print(
        "\n"
        + format_table(
            ["strategy", "bytes", "vs hash"],
            [
                ["hash", hash_bytes, 1.0],
                ["greedy", greedy_bytes, greedy_bytes / hash_bytes],
                ["local search", local_bytes, local_bytes / hash_bytes],
                ["LPRR", lprr_bytes, lprr_bytes / hash_bytes],
            ],
        )
    )

    # The ladder ordering.
    assert local_bytes < greedy_bytes
    assert lprr_bytes <= local_bytes * 1.10
    assert lprr_bytes < greedy_bytes