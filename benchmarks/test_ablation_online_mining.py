"""Ablation: sketch-mined vs exact correlations for placement quality.

The online subsystem estimates ``r(i, j)`` in bounded memory (Count-Min
sketch + Space-Saving top-K) instead of exact per-pair counters.  The
estimate is lossy — only heavy hitters survive, each somewhat
overcounted — so the question is whether placements planned from it are
materially worse than placements planned from the exact counts.

This bench mines the study's query log both ways, plans a greedy
placement from each estimate, and evaluates **both placements under the
exact problem**.  The sketch keeps a few thousand cells versus tens of
thousands of distinct pairs, and the paper's skew (Figure 2A: the mass
concentrates in the top pairs) is exactly why the top-K summary
suffices for placement purposes.
"""

from repro.analysis.reporting import format_table
from repro.core.placement import Placement
from repro.core.problem import PlacementProblem
from repro.core.strategies import PlanConfig, plan
from repro.online import SketchCorrelationEstimator

NUM_NODES = 10
SKETCH_WIDTH = 4096
SKETCH_DEPTH = 4
HEAVY_HITTERS = 2048


def test_online_mining(benchmark, study):
    exact_problem = study.placement_problem(NUM_NODES)
    sizes = dict(zip(exact_problem.object_ids, exact_problem.sizes))
    trace = [q.keywords for q in study.log]
    config = PlanConfig(seed=study.config.seed)

    def run():
        estimator = SketchCorrelationEstimator(
            mode="two_smallest",
            sizes=sizes,
            width=SKETCH_WIDTH,
            depth=SKETCH_DEPTH,
            heavy_hitters=HEAVY_HITTERS,
            seed=study.config.seed,
        )
        estimator.observe_all(trace)
        sketch_problem = PlacementProblem.build(
            sizes,
            NUM_NODES,
            estimator.correlations(min_support=study.config.min_support),
        )
        exact_placement = plan(exact_problem, "greedy", config).placement
        sketch_placement = Placement.from_mapping(
            exact_problem,
            plan(sketch_problem, "greedy", config).placement.to_mapping(),
        )
        return {
            "exact": (
                len(exact_problem.pair_index),
                exact_placement.communication_cost(),
            ),
            "sketch": (
                estimator.memory_cells,
                sketch_placement.communication_cost(),
            ),
        }

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        "\n"
        + format_table(
            ["estimator", "state (pairs/cells)", "cost under exact problem"],
            [[name, state, cost] for name, (state, cost) in rows.items()],
            float_format="{:.4f}",
        )
    )

    exact_cost = rows["exact"][1]
    sketch_cost = rows["sketch"][1]
    # The sketch-planned placement must stay close to the exact-planned
    # one when both are judged by the exact correlations.
    assert sketch_cost <= 1.25 * exact_cost + 1e-9
    # And the memory bound must hold regardless of stream content.
    assert rows["sketch"][0] == SKETCH_WIDTH * SKETCH_DEPTH + HEAVY_HITTERS
