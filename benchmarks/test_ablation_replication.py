"""Ablation: correlation-aware vs hash replication under domain faults.

Both contestants place two copies of every object under the *same*
failure-domain spread constraint (no two replicas share a zone of the
3-zone/6-rack topology), so durability is equal by construction.  What
differs is where the copies go: ``lprr:rep`` keeps correlated pairs
co-resident on at least one common node, the salted-hash baseline
scatters them.  The claim under test: correlation awareness wins on
communication cost *and* on unserved operations under correlated
(whole-rack / whole-zone) failures — operations whose objects share
replica nodes fail together or survive together, instead of failing
whenever either of two independent node sets dies.
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.cluster import synthetic_topology
from repro.core.replication import spread_violations
from repro.core.strategies import PlanConfig, plan
from repro.resilience import ChaosConfig, FaultSchedule, run_chaos, synthetic_scenario

NUM_NODES = 12
ZONES = 3
RACKS_PER_ZONE = 2
REPLICAS = 2
SEEDS = range(5)


def _unserved(report, side):
    return sum(
        getattr(e, side).operations - getattr(e, side).servable_operations
        for e in report.epochs
    )


def test_replicated_lprr_beats_replicated_hash(benchmark):
    topology = synthetic_topology(NUM_NODES, zones=ZONES, racks_per_zone=RACKS_PER_ZONE)

    def run():
        rows = []
        for seed in SEEDS:
            problem, operations = synthetic_scenario(
                num_objects=40,
                num_nodes=NUM_NODES,
                num_operations=80,
                seed=seed,
                capacity_factor=2.0 * REPLICAS,
            )
            schedule = FaultSchedule.random_domains(
                topology, len(operations), seed=seed, events=8
            )
            config = ChaosConfig(replicas=REPLICAS, topology=topology)
            report = run_chaos(problem, operations, schedule, config, seed=seed)
            again = run_chaos(problem, operations, schedule, config, seed=seed)
            assert report.to_json() == again.to_json()  # byte-reproducible

            # The optimized placement itself: zero spread violations.
            result = plan(
                problem,
                "resilient",
                PlanConfig(replicas=REPLICAS, topology=topology, seed=seed),
            )
            replicated = result.details
            ids = topology.domain_ids(replicated.spread)
            assert spread_violations(replicated.assignment, ids).size == 0

            rows.append(
                (
                    seed,
                    report.healthy_cost_single,  # rep:hash baseline slot
                    report.healthy_cost_replicated,
                    _unserved(report, "single"),
                    _unserved(report, "replicated"),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        "\n"
        + format_table(
            ["seed", "hash cost", "lprr:rep cost", "hash unserved", "lprr:rep unserved"],
            [list(r) for r in rows],
        )
    )

    # Cost: correlation-aware replication never pays more than the
    # spread-hash baseline, on any seed.
    for seed, hash_cost, lprr_cost, _, _ in rows:
        assert lprr_cost <= hash_cost + 1e-9, f"seed {seed} cost regression"

    # Unserved operations: never worse, and strictly better under at
    # least one domain-fault schedule — the co-residency payoff.
    for seed, _, _, hash_unserved, lprr_unserved in rows:
        assert lprr_unserved <= hash_unserved, f"seed {seed} availability regression"
    assert any(
        lprr_unserved < hash_unserved
        for _, _, _, hash_unserved, lprr_unserved in rows
    ), "no seed showed a strict unserved-operation win"
