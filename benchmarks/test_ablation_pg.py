"""Ablation: placement-group planning vs exact per-object LPRR.

Placement-group indirection (``docs/SCALE.md``) plans ``K`` hashed
groups plus the top-``M`` important objects instead of every object,
which bounds LP size independently of the real object count.  The
coarsening is lossy — intra-group pairs vanish from the objective and
tail objects are forced to co-locate group-wise — so the question is
what that costs at a scale where exact per-object LPRR is still
feasible and can be measured directly.

The study's search problem is capacity-unconstrained, where exact LPRR
separates every pair for zero cost and a cost *ratio* is meaningless;
this bench instead uses the capacitated synthetic scenario (the chaos
workload), where finite capacities force conflict and both planners pay
a measurable communication cost.  The paper's skew is why the PG plan
stays close: the important objects (kept exact) carry most of the pair
mass, so the hashed tail loses little.
"""

from repro.analysis.reporting import format_table
from repro.core.strategies import PlanConfig, PlanScope, plan
from repro.resilience import synthetic_scenario

NUM_OBJECTS = 400
NUM_NODES = 8
NUM_OPERATIONS = 300
GROUPS = 128
IMPORTANT = 192


def test_pg_vs_exact_lprr(benchmark, study):
    problem, _ = synthetic_scenario(
        num_objects=NUM_OBJECTS,
        num_nodes=NUM_NODES,
        num_operations=NUM_OPERATIONS,
        seed=study.config.seed,
    )
    seed = study.config.seed

    def run():
        exact = plan(problem, "lprr", PlanConfig(seed=seed))
        pg = plan(
            problem,
            "lprr:pg",
            PlanConfig(
                scope=PlanScope.pg(groups=GROUPS, important=IMPORTANT),
                seed=seed,
            ),
        )
        return {
            "exact lprr": (problem.num_objects, exact.cost),
            "lprr:pg": (pg.diagnostics["coarse_objects"], pg.cost),
        }

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        "\n"
        + format_table(
            ["planner", "LP objects", "communication cost"],
            [[name, size, cost] for name, (size, cost) in rows.items()],
            float_format="{:.4f}",
        )
    )

    exact_cost = rows["exact lprr"][1]
    pg_cost = rows["lprr:pg"][1]
    # The synthetic scenario spreads pair mass fairly evenly (unlike
    # the paper's Zipf logs), so the tail is as unfriendly to grouping
    # as it gets; even here the PG plan — optimizing ~20% fewer LP
    # objects, and unboundedly fewer at bench scale — must land within
    # 25% of the exact per-object plan.
    assert pg_cost <= 1.25 * exact_cost + 1e-9
