"""Ablation: LPRR vs the exact optimum on small instances (Theorem 2).

The expected-optimality guarantee says best-of-k LPRR should land at or
near the true optimum when instances are small enough to solve exactly.
This bench runs a batch of random small CCA instances through exact
branch-and-bound, LPRR, and greedy, and reports the mean optimality
gaps.
"""

import numpy as np

from repro.core.exact import solve_exact
from repro.core.greedy import greedy_placement
from repro.core.lprr import LPRRPlanner
from repro.core.problem import PlacementProblem

NUM_INSTANCES = 12


def random_instance(seed):
    rng = np.random.default_rng(seed)
    t = int(rng.integers(8, 13))
    n = int(rng.integers(2, 4))
    objects = {f"o{i}": float(rng.uniform(1, 4)) for i in range(t)}
    capacity = sum(objects.values()) / n * 1.6
    corr = {}
    for i in range(t):
        for j in range(i + 1, t):
            if rng.random() < 0.4:
                corr[(f"o{i}", f"o{j}")] = float(rng.uniform(0.05, 1.0))
    return PlacementProblem.build(objects, {k: capacity for k in range(n)}, corr)


def test_optimality_gap(benchmark, study):
    def run_batch():
        gaps_lprr, gaps_greedy, bound_gaps = [], [], []
        for seed in range(NUM_INSTANCES):
            problem = random_instance(seed)
            exact = solve_exact(problem)
            planner = LPRRPlanner(
                capacity_factor=None, rounding_trials=40, seed=seed,
                capacity_tolerance=0.0,
            )
            lprr = planner.plan(problem)
            greedy = greedy_placement(problem)
            base = exact.cost + 1e-9
            gaps_lprr.append(lprr.cost / base)
            gaps_greedy.append(greedy.communication_cost() / base)
            bound_gaps.append(lprr.lp_lower_bound / base)
        return gaps_lprr, gaps_greedy, bound_gaps

    gaps_lprr, gaps_greedy, bound_gaps = benchmark.pedantic(
        run_batch, rounds=1, iterations=1
    )
    print(
        f"\nLPRR/optimal: mean {np.mean(gaps_lprr):.3f} max {np.max(gaps_lprr):.3f}; "
        f"greedy/optimal: mean {np.mean(gaps_greedy):.3f}; "
        f"LP bound/optimal: mean {np.mean(bound_gaps):.3f}"
    )

    # The LP bound never exceeds the optimum.
    assert max(bound_gaps) <= 1.0 + 1e-6
    # Best-of-40 LPRR is near-optimal on average ...
    assert np.mean(gaps_lprr) < 1.25
    # ... and never catastrophically bad.
    assert np.max(gaps_lprr) < 2.0
    # LPRR at least matches greedy in aggregate.
    assert np.mean(gaps_lprr) <= np.mean(gaps_greedy) + 0.05
