"""Ablation: repeated randomized rounding (Section 2.3).

Theorem 2 guarantees the *expected* rounded cost equals the LP optimum;
any single draw can be worse.  The paper's remedy is to "repeat the
randomized rounding several times and pick the best solution."

A subtlety this bench also demonstrates: under the paper's conservative
capacities (factor >= 1 of the average load), the LP optimum is exactly
zero — every correlated component can share one fractional row — so all
rounding draws cost zero *before* capacity handling, and the benefit of
extra trials shows up in the final capacity-respecting placement: more
trials mean more chances to draw a component-to-node assignment that
needs little or no repair.
"""

import numpy as np

from repro.core.lprr import LPRRPlanner


def test_rounding_repeats(benchmark, study):
    problem = study.placement_problem(10)

    def sweep():
        results = {}
        for trials in (1, 5, 25):
            costs = []
            for seed in range(8):
                planner = LPRRPlanner(
                    scope=300,
                    capacity_factor=1.5,  # tight: only ~2/3 of draws are feasible
                    rounding_trials=trials,
                    seed=seed,
                )
                costs.append(planner.plan(problem).cost)
            results[trials] = costs
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    means = {k: float(np.mean(v)) for k, v in results.items()}
    print(
        "\nmean final cost by rounding trials: "
        + ", ".join(f"{k}: {v:.4g}" for k, v in sorted(means.items()))
    )

    # More trials never hurt on average (same seeds, nested candidates
    # up to rounding randomness; allow 5% noise).
    assert means[25] <= means[1] * 1.05 + 1e-9
    # And the LP bound (zero under conservative capacities) is respected.
    planner = LPRRPlanner(scope=300, capacity_factor=1.5, rounding_trials=5, seed=0)
    result = planner.plan(problem)
    assert result.lp_lower_bound <= result.cost + 1e-9
    assert result.lp_lower_bound == 0.0  # the zero-optimum phenomenon
