"""Figure 6: normalized communication cost vs optimization scope.

Paper (10 nodes, scopes 1000..10000 over a 253k vocabulary): LPRR
reaches ~78% communication savings at the widest scope and beats the
greedy heuristic (up to ~44% savings) at every scope; savings grow
with scope.  At bench scale the scopes are proportional fractions of
the synthetic vocabulary; the bench asserts the ordering (LPRR < greedy
< hash at the widest scope), the trend (wider scope never much worse),
and the savings band.
"""

import pytest

from repro.experiments.fig6 import ScopeSweepConfig, run_scope_sweep

# ~8%..60% of the bench vocabulary, the paper's 1000..10000 of 253k is
# sparser but the curve shape is the target, not the x-axis.
SCOPES = (100, 200, 400, 700)


def test_fig6_scope_sweep(benchmark, study, results_cache):
    config = ScopeSweepConfig(scopes=SCOPES, num_nodes=10, rounding_trials=10)
    result = benchmark.pedantic(
        lambda: run_scope_sweep(study, config), rounds=1, iterations=1
    )
    results_cache["fig6"] = result
    print("\n" + result.render())

    norm_lprr = result.normalized_lprr
    norm_greedy = result.normalized_greedy

    # Everybody saves something at every scope.
    assert all(v < 1.0 for v in norm_lprr)
    assert all(v < 1.0 for v in norm_greedy)

    # LPRR dominates greedy at the widest scope (paper: 78% vs 44%).
    assert norm_lprr[-1] < norm_greedy[-1]

    # Savings at the widest scope are substantial (paper: ~78%).
    assert result.best_lprr_saving > 0.35

    # Wider scope helps (allowing small rounding noise on the way).
    assert norm_lprr[-1] <= norm_lprr[0] + 0.05
