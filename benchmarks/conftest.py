"""Shared fixtures for the benchmark suite.

All benchmarks share one session-scoped case study sized so the whole
suite finishes in minutes on a laptop (the paper's full-scale runs took
up to 48 hours of LP time; EXPERIMENTS.md maps the scales).  Sweep
results are cached in a session dict so the headline-range benchmark
can aggregate without re-running the expensive sweeps.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import CaseStudy, CaseStudyConfig

BENCH_CONFIG = CaseStudyConfig(
    num_documents=800,
    vocabulary_size=2500,
    words_per_doc=90.0,
    membership_exponent=0.2,
    topic_size_range=(2, 5),
    num_queries=12_000,
    num_topics=250,
    topic_query_fraction=0.85,
    drift_fraction=0.02,
    min_support=2,
    seed=0,
)


@pytest.fixture(scope="session")
def study() -> CaseStudy:
    """The shared synthetic case study."""
    return CaseStudy.build(BENCH_CONFIG)


@pytest.fixture(scope="session")
def results_cache() -> dict:
    """Cross-module cache of expensive sweep results."""
    return {}
