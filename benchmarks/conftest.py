"""Shared fixtures for the benchmark suite.

All benchmarks share one session-scoped case study sized so the whole
suite finishes in minutes on a laptop (the paper's full-scale runs took
up to 48 hours of LP time; EXPERIMENTS.md maps the scales).  Sweep
results are cached in a session dict so the headline-range benchmark
can aggregate without re-running the expensive sweeps.

Options (used by the CI bench-smoke job):

* ``--jobs N`` — worker count handed to benchmarks that exercise the
  parallel engine (default 1; the study itself stays on the legacy
  engine so headline baselines are untouched).
* ``--metrics-json PATH`` — collect ``repro.obs`` metrics over the
  whole session and write a JSON report to PATH.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.experiments.common import CaseStudy, CaseStudyConfig

BENCH_CONFIG = CaseStudyConfig(
    num_documents=800,
    vocabulary_size=2500,
    words_per_doc=90.0,
    membership_exponent=0.2,
    topic_size_range=(2, 5),
    num_queries=12_000,
    num_topics=250,
    topic_query_fraction=0.85,
    drift_fraction=0.02,
    min_support=2,
    seed=0,
)


@pytest.fixture(scope="session")
def study() -> CaseStudy:
    """The shared synthetic case study."""
    return CaseStudy.build(BENCH_CONFIG)


@pytest.fixture(scope="session")
def results_cache() -> dict:
    """Cross-module cache of expensive sweep results."""
    return {}


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--jobs",
        type=int,
        default=1,
        help="worker count for parallel-engine benchmarks",
    )
    parser.addoption(
        "--metrics-json",
        default=None,
        metavar="PATH",
        help="write a repro.obs metrics report for the session to PATH",
    )


@pytest.fixture(scope="session")
def bench_jobs(request) -> int:
    """The --jobs option (parallel-engine worker count)."""
    return request.config.getoption("--jobs")


@pytest.fixture(scope="session", autouse=True)
def _session_metrics(request):
    """Instrument the whole session when --metrics-json is given."""
    path = request.config.getoption("--metrics-json")
    if path is None:
        yield
        return
    inst = obs.enable(obs.Instrumentation())
    try:
        yield
    finally:
        obs.disable()
        from repro.obs.export import to_json

        with open(path, "w", encoding="utf-8") as fh:
            fh.write(to_json(inst.metrics, inst.tracer) + "\n")
