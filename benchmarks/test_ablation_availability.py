"""Ablation: availability under node failures.

A natural worry about correlation-aware placement is blast radius:
co-locating hot clusters means one failed node kills whole query
classes.  The measurement says otherwise — co-location makes each
query depend on *fewer* nodes (one instead of several), so fewer
queries have any failed dependency, and single-copy LPRR's worst-case
availability actually beats hash's.  Replication then lifts worst-case
availability to 1.0 while keeping the communication savings.
"""

from repro.analysis.reporting import format_table
from repro.cluster.failures import worst_single_failure
from repro.core.lprr import LPRRPlanner
from repro.core.replication import greedy_replicated_placement
from repro.search.replicated_engine import ReplicatedSearchEngine
from repro.search.engine import DistributedSearchEngine

NUM_NODES = 10
SCOPE = 400


def test_failure_availability(benchmark, study):
    problem = study.placement_problem(NUM_NODES)
    trace = [q.keywords for q in study.log][:4000]

    def run():
        hash_placement = study.place_hash(NUM_NODES)
        lprr_placement = study.place_lprr(NUM_NODES, SCOPE)
        capped = problem.with_capacities(2.0 * 2 * problem.total_size / NUM_NODES)
        replicated = greedy_replicated_placement(
            capped,
            replicas=2,
            primary_strategy=lambda p: LPRRPlanner(scope=SCOPE, seed=0)
            .plan(p)
            .placement,
        )
        rows = {}
        rows["hash x1"] = (
            worst_single_failure(hash_placement, trace).operation_availability,
            DistributedSearchEngine(study.index, hash_placement)
            .execute_log(study.log)
            .total_bytes,
        )
        rows["lprr x1"] = (
            worst_single_failure(lprr_placement, trace).operation_availability,
            DistributedSearchEngine(study.index, lprr_placement)
            .execute_log(study.log)
            .total_bytes,
        )
        rows["lprr x2"] = (
            worst_single_failure(replicated, trace).operation_availability,
            ReplicatedSearchEngine(study.index, replicated)
            .execute_log(study.log)
            .total_bytes,
        )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    hash_bytes = rows["hash x1"][1]
    print(
        "\n"
        + format_table(
            ["design", "worst-failure availability", "bytes vs hash"],
            [
                [name, avail, b / hash_bytes]
                for name, (avail, b) in rows.items()
            ],
        )
    )

    # Co-location shrinks per-query dependency sets, so single-copy
    # LPRR survives its worst failure at least as well as hash.
    assert rows["lprr x1"][0] >= rows["hash x1"][0] - 0.05
    # Replication restores availability ...
    assert rows["lprr x2"][0] > max(rows["lprr x1"][0], rows["hash x1"][0])
    # ... while keeping most of the communication savings.
    assert rows["lprr x2"][1] < hash_bytes