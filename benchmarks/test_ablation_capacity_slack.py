"""Ablation: the conservative-capacity factor (Sections 2.3, 4.1).

Theorem 3 only bounds the *expected* per-node load, so the paper runs
its LP with capacities at 2x the average per-node load.  This bench
sweeps the factor: tighter factors balance load better but constrain
the LP (higher cost); looser factors approach the unconstrained
clustering optimum at the price of imbalance.
"""

from repro.analysis.reporting import format_table
from repro.core.lprr import LPRRPlanner

FACTORS = (1.2, 1.5, 2.0, 3.0)
SCOPE = 300


def test_capacity_slack(benchmark, study):
    problem = study.placement_problem(10)

    def sweep():
        rows = []
        for factor in FACTORS:
            planner = LPRRPlanner(
                scope=SCOPE, capacity_factor=factor, seed=0, rounding_trials=10
            )
            result = planner.plan(problem)
            rows.append(
                (factor, result.cost, result.placement.load_imbalance())
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(
        "\n"
        + format_table(
            ["capacity factor", "replayed model cost", "load max/mean"],
            [list(r) for r in rows],
        )
    )

    costs = [cost for _, cost, _ in rows]
    imbalances = {factor: imb for factor, _, imb in rows}

    # Loosening from the tightest to the loosest factor cannot hurt the
    # optimized cost (the LP's feasible set only grows).
    assert costs[-1] <= costs[0] + 1e-9
    # The paper's 2x factor keeps the max load within ~2x of the mean
    # for the scoped objects (modulo hashed out-of-scope load).
    assert imbalances[2.0] < 2.5
