"""Figure 2(B): stability of keyword-pair correlations across periods.

Paper: tracking January's top-1000 pairs into February, "only 1.2%
keyword pairs have correlation changes that are greater-than-twice or
less-than-half the originals."  The synthetic period-two log comes
from a model drifted by 2% of topics, so the measured unstable
fraction must stay small (single-digit percent) while most pairs stay
within 2x of their period-one probability.
"""

from repro.experiments.fig2 import SkewStabilityConfig, run_skewness_stability


def test_fig2b_stability(benchmark, study, results_cache):
    if "fig2" in results_cache:
        result = results_cache["fig2"]
        benchmark.pedantic(lambda: result, rounds=1, iterations=1)
    else:
        result = benchmark.pedantic(
            lambda: run_skewness_stability(study, SkewStabilityConfig(top_pairs=1000)),
            rounds=1,
            iterations=1,
        )
        results_cache["fig2"] = result
    report = result.stability
    print(
        f"\nFigure 2(B): unstable fraction {report.unstable_fraction:.2%} "
        f"(paper: 1.2%) over {len(report.pairs)} tracked pairs"
    )

    assert len(report.pairs) >= 200
    # The dominant property: the vast majority of pairs are stable.
    assert report.unstable_fraction < 0.10
    # And period-two probabilities of surviving pairs track period one.
    tracked = [
        (r, c) for r, c in zip(report.reference, report.comparison) if c > 0
    ]
    within_2x = sum(1 for r, c in tracked if 0.5 <= c / r <= 2.0)
    assert within_2x / len(tracked) > 0.85
