"""Ablation: the two-smallest cost approximation (Section 3.2).

The optimizer models a multi-keyword query as a two-object operation on
the two smallest requested indices (cost = smaller index size if they
are split).  The engine, however, executes the real smallest-first
pipelined intersection.  This bench compares the model's predicted
trace cost against the engine's replayed bytes for each strategy and
checks the approximation is a faithful, conservative predictor — and
crucially that it preserves the *ranking* of strategies.
"""

from repro.analysis.reporting import format_table


def test_pair_approximation(benchmark, study):
    problem = study.placement_problem(10)
    num_queries = len(study.log)

    placements = {
        "hash": study.place_hash(10),
        "greedy": study.place_greedy(10, 400),
        "lprr": study.place_lprr(10, 400),
    }

    def measure():
        rows = {}
        for name, placement in placements.items():
            # Model: expected bytes/query * number of queries.
            predicted = placement.communication_cost() * num_queries
            replayed = study.replay_cost(placement)
            rows[name] = (predicted, replayed)
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(
        "\n"
        + format_table(
            ["strategy", "model-predicted bytes", "engine bytes", "ratio"],
            [
                [name, p, r, (r / p if p else 0.0)]
                for name, (p, r) in rows.items()
            ],
            float_format="{:.3f}",
        )
    )

    # The model must rank strategies in the same order as reality.
    predicted_order = sorted(rows, key=lambda k: rows[k][0])
    replayed_order = sorted(rows, key=lambda k: rows[k][1])
    assert predicted_order == replayed_order

    # For the hash baseline the two-smallest model should land within a
    # small constant factor of real pipelined traffic: the first hop
    # ships exactly the smallest index, later hops ship shrunken
    # results the model ignores.
    predicted, replayed = rows["hash"]
    assert 0.8 < replayed / predicted < 3.0
