"""Headline result: savings ranges across the full experiment grid.

Paper abstract: "our approach achieves 37-86% communication overhead
reduction on a range of optimization scopes and system sizes.  The
communication reduction is 30-78% compared to a correlation-aware
greedy approach."  This bench aggregates the Figure 6 and Figure 7
grids (reusing their cached results when the full suite runs) and
checks the same two comparisons hold directionally at bench scale.
"""

from repro.experiments.fig6 import ScopeSweepConfig, run_scope_sweep
from repro.experiments.fig7 import NodeSweepConfig, run_node_sweep


def _collect(study, results_cache):
    fig6 = results_cache.get("fig6")
    if fig6 is None:
        fig6 = run_scope_sweep(
            study, ScopeSweepConfig(scopes=(100, 200, 400, 700), num_nodes=10)
        )
    fig7 = results_cache.get("fig7")
    if fig7 is None:
        fig7 = run_node_sweep(
            study, NodeSweepConfig(node_counts=(10, 40, 100), scope=400)
        )
    return fig6, fig7


def test_headline_savings_ranges(benchmark, study, results_cache):
    fig6, fig7 = benchmark.pedantic(
        lambda: _collect(study, results_cache), rounds=1, iterations=1
    )

    # All (scope, nodes) grid points: LPRR saving vs hash.
    vs_hash = [1 - v for v in fig6.normalized_lprr] + [
        1 - v for v in fig7.normalized_lprr
    ]
    # LPRR saving vs greedy at the same grid points.
    vs_greedy = [
        1 - l / g
        for l, g in zip(fig6.lprr_bytes, fig6.greedy_bytes)
    ] + [
        1 - l / g
        for l, g in zip(fig7.lprr_bytes, fig7.greedy_bytes)
    ]

    print(
        f"\nLPRR vs hash savings: {min(vs_hash):.0%}..{max(vs_hash):.0%} "
        "(paper: 37%..86%)"
    )
    print(
        f"LPRR vs greedy savings: {min(vs_greedy):.0%}..{max(vs_greedy):.0%} "
        "(paper: 30%..78%)"
    )

    # Shape: LPRR always saves materially vs hash, and the band is wide.
    assert min(vs_hash) > 0.25
    assert max(vs_hash) > 0.55
    # LPRR never loses to greedy anywhere on the grid, and wins big
    # somewhere (the paper's 30-78% band).
    assert min(vs_greedy) > -0.05
    assert max(vs_greedy) > 0.25
