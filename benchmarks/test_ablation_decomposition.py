"""Ablation: per-component LP decomposition.

Objects interact only through correlated-pair chains, so the LP splits
exactly along connected components (the capacity coupling is loose in
the conservative regime).  This bench compares monolithic vs
decomposed planning at full optimization scope — same quality, smaller
LPs — quantifying the path to paper-scale vocabularies.
"""

import time

from repro.analysis.reporting import format_table
from repro.core.decompose import correlation_components
from repro.core.lprr import LPRRPlanner

NUM_NODES = 10


def test_decomposition(benchmark, study):
    problem = study.placement_problem(NUM_NODES)
    components = correlation_components(problem)
    multi = [c for c in components if len(c) >= 2]

    def run():
        results = {}
        for label, kwargs in (("monolithic", {}), ("decomposed", {"decompose": True})):
            start = time.perf_counter()
            outcome = LPRRPlanner(seed=0, rounding_trials=5, **kwargs).plan(problem)
            elapsed = time.perf_counter() - start
            replay = study.replay_cost(outcome.placement)
            results[label] = (elapsed, outcome.lp_stats.solve_seconds, replay)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\ncorrelation graph: {len(components)} components "
        f"({len(multi)} non-singleton; largest has {len(multi[0])} objects)"
    )
    print(
        format_table(
            ["mode", "total s", "LP solve s", "replayed bytes"],
            [[label, *values] for label, values in results.items()],
            float_format="{:.3f}",
        )
    )

    mono_elapsed, mono_lp, mono_bytes = results["monolithic"]
    deco_elapsed, deco_lp, deco_bytes = results["decomposed"]
    # Equivalent placement quality (both colocate every component that
    # fits; rounding noise bounded).
    assert deco_bytes <= mono_bytes * 1.15
    assert mono_bytes <= deco_bytes * 1.15
    # The decomposition genuinely splits the work.
    assert len(multi) > 10