"""Figure 5: dominance of the most important keywords.

Paper: a small prefix of the importance ranking covers a large share
of both cumulative index size and cumulative inter-keyword
communication cost (the curves rise steeply then flatten), which is
what makes partial optimization viable.  The bench asserts the same
shape: the top ~20% of keywords cover well over half of the pair
communication weight and a disproportionate share of index bytes.
"""

from repro.experiments.fig5 import DominanceConfig, run_dominance


def test_fig5_dominance(benchmark, study):
    result = benchmark.pedantic(
        lambda: run_dominance(study, DominanceConfig()),
        rounds=1,
        iterations=1,
    )
    print("\n" + result.render())

    curves = result.curves
    total = result.vocabulary_size
    assert curves.checkpoints[-1] == total
    # Full scope covers everything.
    assert curves.size_fraction[-1] == 1.0
    assert abs(curves.cost_fraction[-1] - 1.0) < 1e-9

    # Shape: the first ~20% of keywords dominate communication cost.
    fifth = next(
        i for i, c in enumerate(curves.checkpoints) if c >= total * 0.2
    )
    assert curves.cost_fraction[fifth] > 0.60
    # And cover disproportionately much index size (> their head count).
    assert curves.size_fraction[fifth] > curves.checkpoints[fifth] / total

    # Monotone non-decreasing curves.
    assert list(curves.size_fraction) == sorted(curves.size_fraction)
    assert list(curves.cost_fraction) == sorted(curves.cost_fraction)
