"""Streaming correlation mining with drift-triggered replanning.

The offline pipeline mines a finished trace; a deployed system watches
traffic *arrive*.  This example generates a diurnal query stream whose
topic structure changes wholesale halfway through (a regime change —
think breaking news), mines pair correlations in
bounded memory (Count-Min sketch + Space-Saving top-K), and lets
:class:`repro.online.OnlinePlanner` keep the placement current:
exponential decay ages out stale correlations, a drift detector (top-K
pair churn + estimated-cost inflation) decides when replanning is worth
its migration bytes, and each replan migrates only the most profitable
moves within a per-period byte budget.

The whole run is seeded and wall-clock-free — rerunning this script
prints byte-identical numbers.

Run:  python examples/online_mining.py
"""

from repro.core.strategies import PlanConfig
from repro.online import DriftThresholds, OnlineConfig, OnlinePlanner
from repro.workloads.query_gen import QueryWorkloadModel
from repro.workloads.stream import TimedQuery, generate_stream

VOCABULARY_SIZE = 250
NUM_TOPICS = 35
NUM_NODES = 6
DURATION_S = 4 * 3600.0  # four hours of traffic
WINDOW_S = 1200.0  # twenty-minute control periods
SEED = 0


def drifting_stream():
    """A diurnal stream whose correlation structure shifts mid-stream."""
    vocabulary = [f"w{i:06d}" for i in range(VOCABULARY_SIZE)]
    before = QueryWorkloadModel(vocabulary, num_topics=NUM_TOPICS, seed=SEED)
    # A fresh topic structure, not a perturbation: the pairs that
    # matter after the shift are different pairs.
    after = QueryWorkloadModel(vocabulary, num_topics=NUM_TOPICS, seed=SEED + 17)
    half = DURATION_S / 2.0
    stream = generate_stream(before, half, base_qps=0.8, seed=SEED)
    stream += [
        TimedQuery(timed.time_s + half, timed.query)
        for timed in generate_stream(after, half, base_qps=0.8, seed=SEED + 1)
    ]
    return vocabulary, stream


def main() -> None:
    vocabulary, stream = drifting_stream()
    config = OnlineConfig(
        num_nodes=NUM_NODES,
        window_s=WINDOW_S,
        sketch_width=512,  # epsilon ~ 0.5% of stream mass
        sketch_depth=4,
        heavy_hitters=384,  # the K of "top-K pairs"
        decay=0.6,  # ~1.4-period half-life
        seed=SEED,
        thresholds=DriftThresholds(churn=0.5, top_k=24),
        budget_fraction=0.1,  # migrate at most 10% of bytes per replan
        planning=PlanConfig(seed=SEED),
    )
    planner = OnlinePlanner({word: 1.0 for word in vocabulary}, config)
    report = planner.run(stream)

    print(report.render())
    print()
    shift_period = int(DURATION_S / 2.0 / WINDOW_S)
    shift = report.periods[shift_period]
    print(
        f"mid-stream shift lands in period {shift_period}: "
        f"action={shift.action}"
        + (
            f", churn={shift.drift.churn:.3f}, reasons={list(shift.drift.reasons)}"
            if shift.drift is not None
            else ""
        )
    )
    print(
        f"estimator state stayed at {report.memory_cells} cells for "
        f"{report.total_operations} operations "
        f"({planner.estimator.heavy.evictions} heavy-hitter evictions)"
    )


if __name__ == "__main__":
    main()
