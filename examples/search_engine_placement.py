"""Distributed full-text search: the paper's case study, end to end.

Generates a synthetic web corpus and query trace, derives keyword-pair
correlations (two-smallest approximation for intersection queries),
computes placements with all three strategies, and replays the trace
through the distributed engine to measure real bytes moved.

Run:  python examples/search_engine_placement.py  (takes ~1-2 minutes)
"""

from repro.analysis.reporting import format_table
from repro.experiments.common import CaseStudy, CaseStudyConfig
from repro.search.engine import DistributedSearchEngine

NUM_NODES = 10
SCOPE = 600  # most-important keywords subject to optimized placement


def main() -> None:
    config = CaseStudyConfig(
        num_documents=800,
        vocabulary_size=2500,
        words_per_doc=90.0,
        num_queries=12_000,
        num_topics=250,
        topic_size_range=(2, 5),
        topic_query_fraction=0.85,
        membership_exponent=0.2,
        min_support=2,
        seed=7,
    )
    print("generating corpus and query trace ...")
    study = CaseStudy.build(config)
    print(
        f"  {config.num_documents} pages, vocabulary {len(study.index)}, "
        f"{len(study.log)} queries (avg {study.log.average_keywords():.2f} keywords)"
    )

    problem = study.placement_problem(NUM_NODES)
    print(f"  placement problem: {problem}\n")

    placements = {
        "random hash": study.place_hash(NUM_NODES),
        "greedy": study.place_greedy(NUM_NODES, SCOPE),
        "LPRR": study.place_lprr(NUM_NODES, SCOPE),
    }

    rows = []
    hash_bytes = None
    for name, placement in placements.items():
        engine = DistributedSearchEngine(study.index, placement)
        stats = engine.execute_log(study.log)
        if name == "random hash":
            hash_bytes = stats.total_bytes
        rows.append(
            [
                name,
                stats.total_bytes,
                stats.total_bytes / hash_bytes,
                stats.local_fraction,
                placement.load_imbalance(),
            ]
        )
    print(
        format_table(
            ["strategy", "bytes moved", "vs hash", "local queries", "load max/mean"],
            rows,
        )
    )
    print(
        "\nPaper's result at this figure: LPRR cuts 37-86% of hash traffic, "
        "greedy less — check the 'vs hash' column."
    )


if __name__ == "__main__":
    main()
