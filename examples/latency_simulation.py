"""Query latency under different placements.

Communication volume (the paper's metric) translates into latency:
every inter-node hop adds wire time and contends for the sender's
uplink.  This example replays the same query stream against hash and
LPRR placements in the timing simulator and reports the latency
distribution and uplink utilization.

Run:  python examples/latency_simulation.py
"""

from repro.analysis.reporting import format_table
from repro.experiments.common import CaseStudy, CaseStudyConfig
from repro.search.simulation import TimingModel, simulate_latencies

NUM_NODES = 8
SCOPE = 400


def main() -> None:
    study = CaseStudy.build(
        CaseStudyConfig(
            num_documents=600,
            vocabulary_size=2000,
            num_queries=6_000,
            num_topics=200,
            membership_exponent=0.2,
            topic_size_range=(2, 5),
            topic_query_fraction=0.85,
            min_support=2,
            seed=9,
        )
    )
    timing = TimingModel(
        bandwidth_bytes_per_s=50e6,  # 400 Mbit/s uplinks
        link_latency_s=0.3e-3,
        scan_bytes_per_s=2e9,
    )

    placements = {
        "random hash": study.place_hash(NUM_NODES),
        "LPRR": study.place_lprr(NUM_NODES, SCOPE),
    }
    rows = []
    for name, placement in placements.items():
        report = simulate_latencies(
            study.index,
            placement,
            study.log,
            arrival_rate_qps=400.0,
            timing=timing,
            seed=0,
        )
        rows.append(
            [
                name,
                report.mean_s * 1e3,
                report.percentile_s(50) * 1e3,
                report.percentile_s(95) * 1e3,
                report.percentile_s(99) * 1e3,
                float(report.uplink_utilization().max()),
            ]
        )
    print(
        format_table(
            [
                "strategy",
                "mean ms",
                "p50 ms",
                "p95 ms",
                "p99 ms",
                "max uplink util",
            ],
            rows,
            float_format="{:.3f}",
        )
    )
    print(
        "\nFewer hops means less wire time and less uplink queueing: the "
        "byte savings of correlation-aware placement become tail-latency "
        "savings."
    )


if __name__ == "__main__":
    main()
