"""Replication + correlation-aware placement + routing.

Production search systems replicate indices for availability; with
copies in play, a query can be answered wherever *some* copy pair
shares a node.  This example compares four designs on the same
workload:

* single copy, hash placement (baseline),
* single copy, LPRR placement (the paper),
* two copies, hash placement with replica routing,
* two copies, correlation-aware replica placement with routing.

Run:  python examples/replicated_indices.py
"""

from repro.analysis.reporting import format_table
from repro.core import LPRRPlanner
from repro.core.replication import (
    greedy_replicated_placement,
    hash_replicated_placement,
)
from repro.experiments.common import CaseStudy, CaseStudyConfig
from repro.search.engine import DistributedSearchEngine
from repro.search.replicated_engine import ReplicatedSearchEngine

NUM_NODES = 8
SCOPE = 300


def main() -> None:
    study = CaseStudy.build(
        CaseStudyConfig(
            num_documents=500,
            vocabulary_size=1600,
            num_queries=8_000,
            num_topics=150,
            membership_exponent=0.2,
            topic_size_range=(2, 5),
            topic_query_fraction=0.85,
            min_support=2,
            seed=6,
        )
    )
    problem = study.placement_problem(NUM_NODES)
    capped = problem.with_capacities(
        2.0 * 2 * problem.total_size / NUM_NODES  # room for two copies
    )

    single_hash = study.place_hash(NUM_NODES)
    single_lprr = study.place_lprr(NUM_NODES, SCOPE)
    double_hash = hash_replicated_placement(capped, replicas=2)
    double_aware = greedy_replicated_placement(
        capped,
        replicas=2,
        primary_strategy=lambda p: LPRRPlanner(scope=SCOPE, seed=0).plan(p).placement,
    )

    engines = {
        "1 copy, hash": DistributedSearchEngine(study.index, single_hash),
        "1 copy, LPRR": DistributedSearchEngine(study.index, single_lprr),
        "2 copies, hash + routing": ReplicatedSearchEngine(study.index, double_hash),
        "2 copies, aware + routing": ReplicatedSearchEngine(study.index, double_aware),
    }
    rows = []
    baseline = None
    for name, engine in engines.items():
        stats = engine.execute_log(study.log)
        if baseline is None:
            baseline = stats.total_bytes
        rows.append([name, stats.total_bytes, stats.total_bytes / baseline, stats.local_fraction])
    print(
        format_table(
            ["design", "bytes moved", "vs 1-copy hash", "local queries"], rows
        )
    )
    print(
        "\nReplication helps even oblivious placement (more chances to "
        "share a node), but correlation-aware copies + routing compound "
        "the savings."
    )


if __name__ == "__main__":
    main()
