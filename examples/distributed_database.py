"""Distributed database / biological sequence store scenario.

The paper's second motivating application (Section 1.1): "a large
biological sequence database may be partitioned and placed on multiple
machines ... a query may search specific parts of the database".  This
example models genome-segment objects queried together by analysis
jobs, places them with hash vs LPRR, and executes the job trace on the
simulated cluster with both intersection-like (alignment filtering)
and union-like (result merging) aggregation.

Run:  python examples/distributed_database.py
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.cluster import Cluster
from repro.core import (
    PlacementProblem,
    PlanConfig,
    cooccurrence_correlations,
    plan,
)

NUM_NODES = 6
NUM_SEGMENTS = 48
NUM_JOBS = 4000


def build_workload(rng: np.random.Generator):
    """Genome segments grouped by chromosome; jobs hit one chromosome."""
    segments = {}
    chromosomes: list[list[str]] = []
    for chrom in range(8):
        members = []
        for part in range(NUM_SEGMENTS // 8):
            name = f"chr{chrom}_seg{part}"
            # Sizes in MB, log-normal-ish spread.
            segments[name] = float(rng.lognormal(mean=3.0, sigma=0.6))
            members.append(name)
        chromosomes.append(members)

    # Chromosome popularity is skewed; jobs request 2-4 segments of one
    # chromosome, occasionally adding a segment from another.
    popularity = np.array([1 / (c + 1) for c in range(8)])
    popularity /= popularity.sum()
    jobs = []
    all_segments = sorted(segments)
    for _ in range(NUM_JOBS):
        chrom = int(rng.choice(8, p=popularity))
        members = chromosomes[chrom]
        count = int(rng.integers(2, 5))
        job = list(rng.choice(members, size=min(count, len(members)), replace=False))
        if rng.random() < 0.1:
            job.append(str(rng.choice(all_segments)))
        jobs.append(tuple(dict.fromkeys(job)))
    return segments, jobs


def main() -> None:
    rng = np.random.default_rng(11)
    segments, jobs = build_workload(rng)
    correlations = cooccurrence_correlations(jobs)
    print(
        f"{len(segments)} genome segments, {len(jobs)} analysis jobs, "
        f"{len(correlations)} correlated pairs"
    )

    problem = PlacementProblem.build(segments, NUM_NODES, correlations)
    placements = {
        "random hash": plan(problem, "hash").placement,
        "LPRR": plan(
            problem, "lprr", PlanConfig(seed=0, rounding_trials=20)
        ).placement,
    }

    rows = []
    for name, placement in placements.items():
        for mode in ("intersection", "union"):
            cluster = Cluster(placement)
            results = cluster.execute_trace(jobs, mode=mode)
            local = sum(1 for r in results if r.is_local) / len(results)
            rows.append(
                [
                    name,
                    mode,
                    cluster.network.total_bytes,
                    cluster.network.total_messages,
                    local,
                ]
            )
    print(format_table(["strategy", "mode", "MB moved", "messages", "local jobs"], rows))
    print(
        "\nCorrelation-aware placement keeps each chromosome's segments "
        "together, so most jobs complete without network traffic."
    )


if __name__ == "__main__":
    main()
