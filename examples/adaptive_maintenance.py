"""A day of placement maintenance: streams, drift, and the control loop.

Simulates an operations day: a diurnal query stream drives the system,
the workload's topics drift mid-day, and the
:class:`~repro.cluster.adaptive.AdaptivePlacer` watches hourly windows,
replanning (within a migration budget) only when measured drift crosses
its threshold — most windows are no-ops, exactly the economics the
paper's stability measurement (Figure 2B) promises.

Run:  python examples/adaptive_maintenance.py
"""

from repro.analysis.reporting import format_table
from repro.cluster.adaptive import AdaptivePlacer
from repro.workloads.query_gen import QueryWorkloadModel
from repro.workloads.stream import generate_stream, split_stream_by_window

VOCAB_SIZE = 400
NUM_NODES = 6
WINDOW_S = 3600.0  # hourly control loop
DRIFT_AT_WINDOW = 6  # topics shift before hour 6


def main() -> None:
    vocabulary = [f"w{i:04d}" for i in range(VOCAB_SIZE)]
    sizes = {w: 1.0 for w in vocabulary}
    morning_model = QueryWorkloadModel(
        vocabulary, num_topics=60, topic_query_fraction=0.9, seed=1
    )
    afternoon_model = morning_model.drifted(change_fraction=0.5, seed=2)

    placer = AdaptivePlacer(
        sizes,
        NUM_NODES,
        drift_threshold=0.40,
        budget_fraction=0.10,
        correlation_mode="cooccurrence",
        min_count=5,
        top_pairs=200,
    )

    bootstrap_stream = generate_stream(
        morning_model, duration_s=WINDOW_S, base_qps=2.0, seed=0
    )
    placer.bootstrap([tq.query.keywords for tq in bootstrap_stream])
    print(f"bootstrapped from {len(bootstrap_stream)} queries\n")

    rows = []
    for hour in range(12):
        model = morning_model if hour < DRIFT_AT_WINDOW else afternoon_model
        stream = generate_stream(
            model, duration_s=WINDOW_S, base_qps=2.0, seed=100 + hour
        )
        windows = list(split_stream_by_window(stream, WINDOW_S))
        operations = [tq.query.keywords for w in windows for tq in w]
        decision = placer.observe_period(operations)
        rows.append(
            [
                hour,
                len(operations),
                decision.unstable_fraction,
                "replan" if decision.replanned else "-",
                decision.plan.num_moves if decision.plan else 0,
                int(decision.plan.bytes_moved) if decision.plan else 0,
            ]
        )
    print(
        format_table(
            ["hour", "queries", "drift", "action", "moves", "bytes moved"],
            rows,
            float_format="{:.3f}",
        )
    )
    print(
        "\nOnly the hours right after the workload shift trigger "
        "migrations; stable hours cost nothing."
    )


if __name__ == "__main__":
    main()
