"""Re-optimization under workload drift, with a migration budget.

The paper's premise (Figure 2B) is that keyword correlations are stable
but not frozen: ~1.2% of pairs change materially per month.  A deployed
system therefore re-optimizes periodically, and migrating indices costs
the very network bytes placement is trying to save.

This example places indices for period 1, drifts the workload, then
compares three period-2 strategies:

* keep the stale placement,
* migrate fully to the fresh LPRR placement,
* migrate only the best moves within a byte budget
  (:func:`repro.core.migration.select_migrations`).

Run:  python examples/replanning.py
"""

from repro.analysis.reporting import format_table
from repro.core import Placement, PlanConfig, plan as plan_placement, select_migrations
from repro.experiments.common import CaseStudy, CaseStudyConfig
from repro.search.engine import DistributedSearchEngine, build_placement_problem

NUM_NODES = 8
SCOPE = 400


def replay_bytes(study, log, placement) -> int:
    engine = DistributedSearchEngine(study.index, placement)
    return engine.execute_log(log).total_bytes


def main() -> None:
    study = CaseStudy.build(
        CaseStudyConfig(
            num_documents=600,
            vocabulary_size=2000,
            num_queries=10_000,
            num_topics=200,
            drift_fraction=0.15,  # exaggerated drift to make replanning visible
            membership_exponent=0.2,
            topic_size_range=(2, 5),
            topic_query_fraction=0.85,
            min_support=2,
            seed=4,
        )
    )
    config = PlanConfig(scope=SCOPE, seed=0)
    problem1 = study.placement_problem(NUM_NODES)
    placement1 = plan_placement(problem1, "lprr", config).placement

    # Period 2: same keywords, drifted correlations.
    problem2 = build_placement_problem(
        study.index, study.log_period2, NUM_NODES, min_support=2
    )
    # Extend period-2 problem over period-1's keyword set if needed.
    stale = Placement.from_mapping(
        problem2,
        {
            obj: placement1.node_of(obj) if obj in set(problem1.object_ids) else 0
            for obj in problem2.object_ids
        },
    )
    fresh = plan_placement(problem2, "lprr", config).placement

    total_index_bytes = int(problem2.total_size)
    budget = total_index_bytes // 20  # allow moving 5% of the data
    plan = select_migrations(stale, fresh, budget_bytes=budget)
    budgeted = plan.apply(stale)

    rows = [
        ["stale (period-1 placement)", replay_bytes(study, study.log_period2, stale), 0],
        [
            f"budgeted migration ({plan.num_moves} moves)",
            replay_bytes(study, study.log_period2, budgeted),
            int(plan.bytes_moved),
        ],
        [
            "full re-placement",
            replay_bytes(study, study.log_period2, fresh),
            int(sum(
                problem2.size_of(o)
                for o, k in zip(problem2.object_ids, stale.assignment != fresh.assignment)
                if k
            )),
        ],
    ]
    print(f"migration budget: {budget} bytes (5% of total index size)\n")
    print(
        format_table(
            ["strategy", "period-2 query bytes", "migration bytes"], rows
        )
    )
    print(
        "\nA small migration budget recovers most of the gap between the "
        "stale and fresh placements — the stability the paper measures is "
        "what makes this cheap."
    )


if __name__ == "__main__":
    main()
