"""Important-object partial optimization: cost vs offline effort.

Section 3.1's trade-off made visible: as the optimization scope grows,
the LP gets bigger (more offline computation) but covers more of the
communication weight.  This example prints the Figure 5 dominance
curves and then sweeps the scope, reporting LP size, solve time, and
the replayed communication cost at each point.

Run:  python examples/partial_optimization_sweep.py  (takes ~1-2 minutes)
"""

from repro.analysis.reporting import format_table
from repro.experiments.common import CaseStudy, CaseStudyConfig
from repro.experiments.fig5 import run_dominance

NUM_NODES = 10
SCOPES = (100, 200, 400, 800)


def main() -> None:
    study = CaseStudy.build(
        CaseStudyConfig(
            num_documents=600,
            vocabulary_size=2000,
            num_queries=10_000,
            num_topics=200,
            seed=3,
        )
    )
    print(run_dominance(study).render())

    hash_bytes = study.replay_cost(study.place_hash(NUM_NODES))
    print(f"\nhash baseline: {hash_bytes} bytes\n")

    rows = []
    for scope in SCOPES:
        result = study.plan_with("lprr", NUM_NODES, scope=scope)
        replayed = study.replay_cost(result.placement)
        rows.append(
            [
                scope,
                result.details.lp_stats.num_variables,
                result.details.lp_stats.num_constraints,
                result.elapsed_seconds,
                replayed / hash_bytes,
            ]
        )
    print(
        format_table(
            ["scope", "LP vars", "LP constraints", "seconds", "cost vs hash"],
            rows,
            float_format="{:.3f}",
        )
    )
    print(
        "\nA small scope already captures most of the savings — the "
        "skew in Figure 5 is what makes partial optimization feasible."
    )


if __name__ == "__main__":
    main()
