"""The parallel planning engine and the content-addressed plan cache.

Three properties of the 1.1 Planner API, demonstrated end to end:

1. **Worker-count independence** — with ``jobs`` set, rounding trials
   use seeds spawned per-trial from the root seed, so ``jobs=1`` and
   ``jobs=4`` produce the *identical* placement (only wall-clock
   changes).  Compare with the legacy serial engine (``jobs=None``),
   which is byte-compatible with pre-1.1 releases but consumes one
   sequential random stream.
2. **Plan caching** — pointing ``cache_dir`` at a directory memoizes
   LP solutions and whole plans by problem fingerprint; a warm replan
   skips the LP solve entirely.
3. **Observability** — with instrumentation enabled, the run exposes
   cache hit/miss counters and pool-utilization gauges.

Run:  python examples/parallel_planning.py
"""

import tempfile

import numpy as np

from repro import PlacementProblem, PlanConfig, obs, plan
from repro.core.correlation import cooccurrence_correlations

NUM_OBJECTS = 120
NUM_NODES = 6


def build_problem() -> PlacementProblem:
    """A synthetic workload with clustered correlations."""
    rng = np.random.default_rng(7)
    sizes = {f"obj{i:03d}": float(rng.lognormal(2.0, 0.5)) for i in range(NUM_OBJECTS)}
    names = sorted(sizes)
    operations = []
    for _ in range(4000):
        cluster = int(rng.integers(NUM_OBJECTS // 6))
        members = names[cluster * 6 : cluster * 6 + 6]
        count = int(rng.integers(2, 4))
        operations.append(tuple(rng.choice(members, size=count, replace=False)))
    return PlacementProblem.build(
        sizes, NUM_NODES, cooccurrence_correlations(operations)
    )


def main() -> None:
    problem = build_problem()
    print(f"problem: {problem}\n")

    # 1. The same seed gives the same placement at every worker count.
    # Tight capacities (1.1x average load) force real trade-offs so the
    # determinism claim is tested on a nonzero-cost instance.
    results = {
        jobs: plan(
            problem, "lprr", PlanConfig(seed=42, jobs=jobs, capacity_factor=1.1)
        )
        for jobs in (1, 2, 4)
    }
    costs = {jobs: r.cost for jobs, r in results.items()}
    assignments = [r.placement.assignment for r in results.values()]
    identical = all(np.array_equal(assignments[0], a) for a in assignments[1:])
    print(f"parallel engine costs by jobs: {costs}")
    print(f"identical placements across jobs=1/2/4: {identical}\n")

    # 2. A cache makes the second plan nearly free.
    with tempfile.TemporaryDirectory() as cache_dir:
        config = PlanConfig(
            seed=42, jobs=1, capacity_factor=1.1, cache_dir=cache_dir
        )
        inst = obs.enable(obs.Instrumentation())
        cold = plan(problem, "lprr", config)
        warm = plan(problem, "lprr", config)
        obs.disable()
        hits = inst.metrics.counter("cache.hits").value
        misses = inst.metrics.counter("cache.misses").value
        print(f"cold plan: {cold.elapsed_seconds * 1000:.1f} ms ({cold.diagnostics['cache']})")
        print(f"warm plan: {warm.elapsed_seconds * 1000:.1f} ms ({warm.diagnostics['cache']})")
        print(f"cache counters: {hits} hits, {misses} misses")
        same = np.array_equal(cold.placement.assignment, warm.placement.assignment)
        print(f"cached placement identical: {same}")


if __name__ == "__main__":
    main()
