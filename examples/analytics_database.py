"""Correlation-aware table placement for a distributed analytics DB.

The paper's second motivating application, end to end on the database
substrate: a star-ish schema of fact and dimension tables, a skewed
join/aggregation workload, and table placement by hash, greedy, and
LPRR — with every join's shipped bytes accounted.

Run:  python examples/analytics_database.py
"""

from repro.analysis.reporting import format_table
from repro.core import LPRRPlanner, greedy_placement, random_hash_placement
from repro.database import (
    DistributedDatabase,
    SchemaConfig,
    generate_queries,
    generate_schema,
)

NUM_NODES = 5


def main() -> None:
    config = SchemaConfig(
        num_groups=10,
        dimensions_per_group=3,
        fact_rows=3000,
        dimension_rows=400,
        seed=2,
    )
    tables = generate_schema(config)
    queries = generate_queries(
        config, num_queries=3000, cross_group_fraction=0.08, seed=3
    )
    print(
        f"{len(tables)} tables "
        f"({sum(t.size_bytes for t in tables) // 1024} KiB total), "
        f"{len(queries)} queries"
    )

    bootstrap = DistributedDatabase(tables, {t.name: 0 for t in tables})
    problem = bootstrap.placement_problem(queries, NUM_NODES, min_support=2)
    print(f"placement problem: {problem}\n")

    capped = problem.with_capacities(2.0 * problem.total_size / NUM_NODES)
    placements = {
        "random hash": random_hash_placement(problem),
        "greedy": greedy_placement(capped),
        "LPRR": LPRRPlanner(seed=0).plan(problem).placement,
    }

    rows = []
    baseline = None
    for name, placement in placements.items():
        mapping = {str(k): v for k, v in placement.to_mapping().items()}
        stats = DistributedDatabase(tables, mapping).execute_log(queries)
        if baseline is None:
            baseline = stats.total_bytes
        rows.append(
            [
                name,
                stats.total_bytes,
                stats.total_bytes / baseline,
                stats.local_fraction,
            ]
        )
    print(
        format_table(
            ["strategy", "bytes shipped", "vs hash", "local queries"], rows
        )
    )
    print(
        "\nEach entity group's fact + dimensions land on one node, so "
        "in-group joins — the bulk of the workload — run locally."
    )


if __name__ == "__main__":
    main()
