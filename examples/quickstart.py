"""Quickstart: the paper's Figure 1 example, solved.

Four keyword indices — CAR, DEALER, SOFTWARE, DOWNLOAD — where
(CAR, DEALER) and (SOFTWARE, DOWNLOAD) are highly correlated pairs.
Placing correlated indices together makes most queries locally
computable; this script compares random hashing, the greedy heuristic,
LPRR, and the exact optimum on that instance.

Run:  python examples/quickstart.py
"""

from repro import PlacementProblem, PlanConfig, plan, solve_exact


def main() -> None:
    # Index sizes in MB; two nodes with 8 MB of space each.
    problem = PlacementProblem.build(
        objects={"car": 4.0, "dealer": 3.0, "software": 5.0, "download": 2.0},
        nodes={"node-1": 8.0, "node-2": 8.0},
        correlations={
            ("car", "dealer"): 0.30,  # 30% of operations hit this pair
            ("software", "download"): 0.25,
            ("car", "software"): 0.02,  # weak cross-pair
        },
    )
    print(f"problem: {problem}")
    print(f"worst case (every pair split): {problem.total_pair_weight:.3f}\n")

    # The tiny instance has real capacities, so plan against them
    # directly instead of the paper's conservative 2x-average rule.
    config = PlanConfig(capacity_factor=None, seed=0)
    strategies = {
        "random hash": plan(problem, "hash", config).placement,
        "greedy": plan(problem, "greedy", config).placement,
        "LPRR": plan(problem, "lprr", config).placement,
        "exact optimum": solve_exact(problem).placement,
    }
    for name, placement in strategies.items():
        groups = {
            node: placement.objects_on(node) for node in problem.node_ids
        }
        print(
            f"{name:>14}: cost={placement.communication_cost():.3f}  "
            f"feasible={placement.is_feasible()}  {groups}"
        )

    lprr = strategies["LPRR"]
    exact = strategies["exact optimum"]
    assert lprr.communication_cost() <= strategies["random hash"].communication_cost()
    print(
        f"\nLPRR matches the optimum here: "
        f"{lprr.communication_cost() == exact.communication_cost()}"
    )


if __name__ == "__main__":
    main()
